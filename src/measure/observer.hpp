// The measurement infrastructure of §II: an Observer is the "instrumented
// Geth" — it attaches to a full node as its MessageSink and logs every
// incoming block/transaction message with a *local* timestamp, i.e. the
// simulation clock plus this vantage's NTP-style offset. Everything the
// analysis pipeline consumes comes from these records, never from simulator
// internals, mirroring the paper's log-driven methodology.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "eth/node.hpp"
#include "eth/sink.hpp"
#include "net/geo.hpp"
#include "sim/simulator.hpp"

namespace ethsim::measure {

struct BlockArrival {
  Hash32 hash;
  std::uint64_t number = 0;
  eth::MessageSink::BlockMsgKind kind = eth::MessageSink::BlockMsgKind::kFullBlock;
  TimePoint local_time;  // skewed by the vantage's clock offset
};

struct TxArrival {
  Hash32 hash;
  Address sender;
  std::uint64_t nonce = 0;
  TimePoint local_time;
};

struct ImportEvent {
  Hash32 hash;
  std::uint64_t number = 0;
  bool new_head = false;
  TimePoint local_time;
};

class Observer final : public eth::MessageSink {
 public:
  Observer(std::string name, net::Region region, sim::Simulator& simulator,
           Duration clock_offset);

  // Installs this observer as the node's message sink.
  void Attach(eth::EthNode& node);

  const std::string& name() const { return name_; }
  net::Region region() const { return region_; }
  Duration clock_offset() const { return clock_offset_; }
  const eth::EthNode* node() const { return node_; }

  // What this vantage's wall clock reads right now.
  TimePoint LocalNow() const { return sim_.Now() + clock_offset_; }

  // Clock-jump injection (src/fault): shifts this vantage's wall clock by
  // `delta` from now on — an NTP step or a VM pause/resume skew. Records
  // already logged keep their original timestamps, exactly like a real log
  // file written before the jump.
  void AdjustClockOffset(Duration delta) { clock_offset_ = clock_offset_ + delta; }

  const std::vector<BlockArrival>& block_arrivals() const { return blocks_; }
  const std::vector<TxArrival>& tx_arrivals() const { return txs_; }
  const std::vector<ImportEvent>& imports() const { return imports_; }

  // First arrival (any message kind) per block / transaction hash.
  const std::unordered_map<Hash32, TimePoint>& first_block_arrival() const {
    return first_block_;
  }
  const std::unordered_map<Hash32, TimePoint>& first_tx_arrival() const {
    return first_tx_;
  }

  // MessageSink:
  void OnBlockMessage(BlockMsgKind kind, const Hash32& hash, std::uint64_t number,
                      const chain::Block* full) override;
  void OnTransactionMessage(const chain::Transaction& tx) override;
  void OnBlockImported(const chain::BlockPtr& block, bool new_head) override;

  // Keccak digest over every record stream in arrival order — the compact
  // fingerprint the determinism tests and run manifests compare. Two runs
  // observed the same world iff their vantage digests match.
  Hash32 Digest() const;

  // Replay ingestion: load records captured earlier (dataset playback). The
  // record's own local_time is preserved; first-arrival indices update.
  void IngestBlockArrival(const BlockArrival& arrival);
  void IngestTxArrival(const TxArrival& arrival);
  void IngestImport(const ImportEvent& event);

 private:
  std::string name_;
  net::Region region_;
  sim::Simulator& sim_;
  Duration clock_offset_;
  eth::EthNode* node_ = nullptr;

  std::vector<BlockArrival> blocks_;
  std::vector<TxArrival> txs_;
  std::vector<ImportEvent> imports_;
  std::unordered_map<Hash32, TimePoint> first_block_;
  std::unordered_map<Hash32, TimePoint> first_tx_;
};

}  // namespace ethsim::measure
