// Dataset persistence — the paper's released artifact was the raw
// measurement logs plus processing tools. This module serializes observer
// logs and the mint catalog to a plain-text dataset directory and loads them
// back, so the analysis pipeline can run on stored data (simulated or,
// with an adapter, real client logs).
//
// Format: one file per vantage (TSV, one record per line) plus catalog
// files; a MANIFEST file lists vantages and clock offsets.
#pragma once

#include <string>
#include <vector>

#include "measure/observer.hpp"
#include "miner/mining.hpp"
#include "miner/pool.hpp"

namespace ethsim::measure {

// A vantage's log, decoupled from the live Observer (what gets persisted).
struct VantageLog {
  std::string name;
  net::Region region = net::Region::WesternEurope;
  Duration clock_offset;
  std::vector<BlockArrival> block_arrivals;
  std::vector<TxArrival> tx_arrivals;
  std::vector<ImportEvent> imports;
};

// Catalog row: ground truth about a produced block (the simulator's
// Etherscan substitute).
struct CatalogBlock {
  Hash32 hash;
  std::uint64_t number = 0;
  Hash32 parent;
  std::string pool;
  bool empty = false;
  bool fork_sibling = false;
  TimePoint mined_at;
};

struct Dataset {
  std::vector<VantageLog> vantages;
  std::vector<CatalogBlock> catalog;
};

// Snapshot of a live observer.
VantageLog SnapshotObserver(const Observer& observer);

// Writes the dataset under `directory` (created if missing). Returns false
// on any I/O failure; when `error` is non-null it receives the failing path
// (with reason), and the failure is also logged via obs::LogError. Every
// stream is checked after its last write, so a full disk or a permissions
// change mid-write is caught, not just a failed open.
bool WriteDataset(const std::string& directory, const Dataset& dataset,
                  std::string* error = nullptr);

// Loads a dataset previously written by WriteDataset. Returns false on any
// I/O or parse failure; `error` (when non-null) receives the failing path,
// including the line number for malformed records.
bool ReadDataset(const std::string& directory, Dataset& out,
                 std::string* error = nullptr);

// Builds the catalog rows from a mint record list + pool roster.
std::vector<CatalogBlock> BuildCatalog(
    const std::vector<miner::MintRecord>& minted,
    const std::vector<miner::PoolSpec>& pools);

// Reconstructs a replay Observer from a persisted vantage log. The returned
// observer serves the analysis pipeline exactly like a live one (the dummy
// simulator is only needed for the base-class reference).
std::unique_ptr<Observer> ReplayObserver(const VantageLog& log,
                                         sim::Simulator& simulator);

// Reconstructs mint records from the catalog (minimal blocks carrying hash,
// number, parent and the pool index resolved against `pools` by name; bodies
// are adopted into `arena`, which must outlive the returned records).
// Enables the catalog-joined analyses (Fig 3) on stored datasets.
std::vector<miner::MintRecord> ReconstructMintRecords(
    chain::BlockArena& arena, const std::vector<CatalogBlock>& catalog,
    const std::vector<miner::PoolSpec>& pools);

}  // namespace ethsim::measure
