#include "measure/dataset.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ethsim::measure {

namespace {

namespace fs = std::filesystem;

const char* KindName(eth::MessageSink::BlockMsgKind kind) {
  switch (kind) {
    case eth::MessageSink::BlockMsgKind::kFullBlock: return "full";
    case eth::MessageSink::BlockMsgKind::kAnnouncement: return "announce";
    case eth::MessageSink::BlockMsgKind::kFetched: return "fetched";
  }
  return "?";
}

bool ParseKind(const std::string& s, eth::MessageSink::BlockMsgKind& kind) {
  if (s == "full") {
    kind = eth::MessageSink::BlockMsgKind::kFullBlock;
  } else if (s == "announce") {
    kind = eth::MessageSink::BlockMsgKind::kAnnouncement;
  } else if (s == "fetched") {
    kind = eth::MessageSink::BlockMsgKind::kFetched;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, '\t')) fields.push_back(field);
  return fields;
}

}  // namespace

VantageLog SnapshotObserver(const Observer& observer) {
  VantageLog log;
  log.name = observer.name();
  log.region = observer.region();
  log.clock_offset = observer.clock_offset();
  log.block_arrivals = observer.block_arrivals();
  log.tx_arrivals = observer.tx_arrivals();
  log.imports = observer.imports();
  return log;
}

std::vector<CatalogBlock> BuildCatalog(
    const std::vector<miner::MintRecord>& minted,
    const std::vector<miner::PoolSpec>& pools) {
  std::vector<CatalogBlock> catalog;
  catalog.reserve(minted.size());
  for (const auto& record : minted) {
    CatalogBlock row;
    row.hash = record.block->hash;
    row.number = record.block->header.number;
    row.parent = record.block->header.parent_hash;
    row.pool = record.pool_index < pools.size() ? pools[record.pool_index].name
                                                : "unknown";
    row.empty = record.block->IsEmpty();
    row.fork_sibling = record.is_fork_sibling;
    row.mined_at = record.mined_at;
    catalog.push_back(std::move(row));
  }
  return catalog;
}

std::unique_ptr<Observer> ReplayObserver(const VantageLog& log,
                                         sim::Simulator& simulator) {
  auto observer = std::make_unique<Observer>(log.name, log.region, simulator,
                                             log.clock_offset);
  for (const auto& arrival : log.block_arrivals)
    observer->IngestBlockArrival(arrival);
  for (const auto& arrival : log.tx_arrivals) observer->IngestTxArrival(arrival);
  for (const auto& event : log.imports) observer->IngestImport(event);
  return observer;
}

std::vector<miner::MintRecord> ReconstructMintRecords(
    const std::vector<CatalogBlock>& catalog,
    const std::vector<miner::PoolSpec>& pools) {
  std::unordered_map<std::string, std::size_t> pool_by_name;
  for (std::size_t i = 0; i < pools.size(); ++i)
    pool_by_name.emplace(pools[i].name, i);

  std::vector<miner::MintRecord> minted;
  minted.reserve(catalog.size());
  for (const auto& row : catalog) {
    const auto it = pool_by_name.find(row.pool);
    if (it == pool_by_name.end()) continue;
    auto block = std::make_shared<chain::Block>();
    block->header.number = row.number;
    block->header.parent_hash = row.parent;
    block->hash = row.hash;  // persisted identity overrides the recomputed one
    miner::MintRecord record;
    record.block = std::move(block);
    record.pool_index = it->second;
    record.mined_at = row.mined_at;
    record.deliberate_empty = row.empty;
    record.is_fork_sibling = row.fork_sibling;
    minted.push_back(std::move(record));
  }
  return minted;
}

bool WriteDataset(const std::string& directory, const Dataset& dataset) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return false;

  {
    std::ofstream manifest(fs::path(directory) / "MANIFEST.tsv");
    if (!manifest) return false;
    manifest << "# vantage\tregion\tclock_offset_us\n";
    for (const auto& vantage : dataset.vantages)
      manifest << vantage.name << '\t'
               << net::RegionShortName(vantage.region) << '\t'
               << vantage.clock_offset.micros() << '\n';
  }

  for (const auto& vantage : dataset.vantages) {
    std::ofstream blocks(fs::path(directory) / (vantage.name + ".blocks.tsv"));
    if (!blocks) return false;
    blocks << "# local_time_us\thash\tnumber\tkind\n";
    for (const auto& arrival : vantage.block_arrivals)
      blocks << arrival.local_time.micros() << '\t' << ToHex(arrival.hash)
             << '\t' << arrival.number << '\t' << KindName(arrival.kind) << '\n';

    std::ofstream txs(fs::path(directory) / (vantage.name + ".txs.tsv"));
    if (!txs) return false;
    txs << "# local_time_us\thash\tsender\tnonce\n";
    for (const auto& arrival : vantage.tx_arrivals)
      txs << arrival.local_time.micros() << '\t' << ToHex(arrival.hash) << '\t'
          << ToHex(arrival.sender) << '\t' << arrival.nonce << '\n';

    std::ofstream imports(fs::path(directory) / (vantage.name + ".imports.tsv"));
    if (!imports) return false;
    imports << "# local_time_us\thash\tnumber\tnew_head\n";
    for (const auto& event : vantage.imports)
      imports << event.local_time.micros() << '\t' << ToHex(event.hash) << '\t'
              << event.number << '\t' << (event.new_head ? 1 : 0) << '\n';
  }

  std::ofstream catalog(fs::path(directory) / "catalog.tsv");
  if (!catalog) return false;
  catalog << "# hash\tnumber\tparent\tpool\tempty\tfork_sibling\tmined_at_us\n";
  for (const auto& row : dataset.catalog)
    catalog << ToHex(row.hash) << '\t' << row.number << '\t' << ToHex(row.parent)
            << '\t' << row.pool << '\t' << (row.empty ? 1 : 0) << '\t'
            << (row.fork_sibling ? 1 : 0) << '\t' << row.mined_at.micros()
            << '\n';
  return true;
}

bool ReadDataset(const std::string& directory, Dataset& out) {
  out = Dataset{};
  std::ifstream manifest(fs::path(directory) / "MANIFEST.tsv");
  if (!manifest) return false;

  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitTabs(line);
    if (fields.size() != 3) return false;
    VantageLog vantage;
    vantage.name = fields[0];
    for (net::Region region : net::AllRegions())
      if (net::RegionShortName(region) == fields[1]) vantage.region = region;
    vantage.clock_offset = Duration::Micros(std::stoll(fields[2]));
    out.vantages.push_back(std::move(vantage));
  }

  for (auto& vantage : out.vantages) {
    std::ifstream blocks(fs::path(directory) / (vantage.name + ".blocks.tsv"));
    if (!blocks) return false;
    while (std::getline(blocks, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto fields = SplitTabs(line);
      if (fields.size() != 4) return false;
      BlockArrival arrival;
      arrival.local_time = TimePoint::FromMicros(std::stoll(fields[0]));
      arrival.hash = FixedBytesFromHex<32>(fields[1]);
      arrival.number = std::stoull(fields[2]);
      if (!ParseKind(fields[3], arrival.kind)) return false;
      vantage.block_arrivals.push_back(arrival);
    }

    std::ifstream txs(fs::path(directory) / (vantage.name + ".txs.tsv"));
    if (!txs) return false;
    while (std::getline(txs, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto fields = SplitTabs(line);
      if (fields.size() != 4) return false;
      TxArrival arrival;
      arrival.local_time = TimePoint::FromMicros(std::stoll(fields[0]));
      arrival.hash = FixedBytesFromHex<32>(fields[1]);
      arrival.sender = FixedBytesFromHex<20>(fields[2]);
      arrival.nonce = std::stoull(fields[3]);
      vantage.tx_arrivals.push_back(arrival);
    }

    std::ifstream imports(fs::path(directory) / (vantage.name + ".imports.tsv"));
    if (!imports) return false;
    while (std::getline(imports, line)) {
      if (line.empty() || line[0] == '#') continue;
      const auto fields = SplitTabs(line);
      if (fields.size() != 4) return false;
      ImportEvent event;
      event.local_time = TimePoint::FromMicros(std::stoll(fields[0]));
      event.hash = FixedBytesFromHex<32>(fields[1]);
      event.number = std::stoull(fields[2]);
      event.new_head = fields[3] == "1";
      vantage.imports.push_back(event);
    }
  }

  std::ifstream catalog(fs::path(directory) / "catalog.tsv");
  if (!catalog) return false;
  while (std::getline(catalog, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto fields = SplitTabs(line);
    if (fields.size() != 7) return false;
    CatalogBlock row;
    row.hash = FixedBytesFromHex<32>(fields[0]);
    row.number = std::stoull(fields[1]);
    row.parent = FixedBytesFromHex<32>(fields[2]);
    row.pool = fields[3];
    row.empty = fields[4] == "1";
    row.fork_sibling = fields[5] == "1";
    row.mined_at = TimePoint::FromMicros(std::stoll(fields[6]));
    out.catalog.push_back(std::move(row));
  }
  return true;
}

}  // namespace ethsim::measure
