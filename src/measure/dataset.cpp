#include "measure/dataset.hpp"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/diag.hpp"

namespace ethsim::measure {

namespace {

namespace fs = std::filesystem;

// Records an I/O or parse failure: logs it and hands the failing path (with
// reason) to the caller's error slot. Always returns false so call sites can
// `return Fail(...)`.
bool Fail(std::string* error, const std::string& path,
          const std::string& reason) {
  obs::LogError("dataset", "%s: %s", path.c_str(), reason.c_str());
  if (error != nullptr) *error = path + ": " + reason;
  return false;
}

bool ParseI64(const std::string& s, std::int64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool ParseU64(const std::string& s, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

const char* KindName(eth::MessageSink::BlockMsgKind kind) {
  switch (kind) {
    case eth::MessageSink::BlockMsgKind::kFullBlock: return "full";
    case eth::MessageSink::BlockMsgKind::kAnnouncement: return "announce";
    case eth::MessageSink::BlockMsgKind::kFetched: return "fetched";
  }
  return "?";
}

bool ParseKind(const std::string& s, eth::MessageSink::BlockMsgKind& kind) {
  if (s == "full") {
    kind = eth::MessageSink::BlockMsgKind::kFullBlock;
  } else if (s == "announce") {
    kind = eth::MessageSink::BlockMsgKind::kAnnouncement;
  } else if (s == "fetched") {
    kind = eth::MessageSink::BlockMsgKind::kFetched;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, '\t')) fields.push_back(field);
  return fields;
}

}  // namespace

VantageLog SnapshotObserver(const Observer& observer) {
  VantageLog log;
  log.name = observer.name();
  log.region = observer.region();
  log.clock_offset = observer.clock_offset();
  log.block_arrivals = observer.block_arrivals();
  log.tx_arrivals = observer.tx_arrivals();
  log.imports = observer.imports();
  return log;
}

std::vector<CatalogBlock> BuildCatalog(
    const std::vector<miner::MintRecord>& minted,
    const std::vector<miner::PoolSpec>& pools) {
  std::vector<CatalogBlock> catalog;
  catalog.reserve(minted.size());
  for (const auto& record : minted) {
    CatalogBlock row;
    row.hash = record.block->hash;
    row.number = record.block->header.number;
    row.parent = record.block->header.parent_hash;
    row.pool = record.pool_index < pools.size() ? pools[record.pool_index].name
                                                : "unknown";
    row.empty = record.block->IsEmpty();
    row.fork_sibling = record.is_fork_sibling;
    row.mined_at = record.mined_at;
    catalog.push_back(std::move(row));
  }
  return catalog;
}

std::unique_ptr<Observer> ReplayObserver(const VantageLog& log,
                                         sim::Simulator& simulator) {
  auto observer = std::make_unique<Observer>(log.name, log.region, simulator,
                                             log.clock_offset);
  for (const auto& arrival : log.block_arrivals)
    observer->IngestBlockArrival(arrival);
  for (const auto& arrival : log.tx_arrivals) observer->IngestTxArrival(arrival);
  for (const auto& event : log.imports) observer->IngestImport(event);
  return observer;
}

std::vector<miner::MintRecord> ReconstructMintRecords(
    chain::BlockArena& arena, const std::vector<CatalogBlock>& catalog,
    const std::vector<miner::PoolSpec>& pools) {
  std::unordered_map<std::string, std::size_t> pool_by_name;
  for (std::size_t i = 0; i < pools.size(); ++i)
    pool_by_name.emplace(pools[i].name, i);

  std::vector<miner::MintRecord> minted;
  minted.reserve(catalog.size());
  for (const auto& row : catalog) {
    const auto it = pool_by_name.find(row.pool);
    if (it == pool_by_name.end()) continue;
    chain::Block block;
    block.header.number = row.number;
    block.header.parent_hash = row.parent;
    block.hash = row.hash;  // persisted identity overrides the recomputed one
    miner::MintRecord record;
    record.block = arena.Adopt(std::move(block));
    record.pool_index = it->second;
    record.mined_at = row.mined_at;
    record.deliberate_empty = row.empty;
    record.is_fork_sibling = row.fork_sibling;
    minted.push_back(std::move(record));
  }
  return minted;
}

bool WriteDataset(const std::string& directory, const Dataset& dataset,
                  std::string* error) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return Fail(error, directory, "cannot create: " + ec.message());

  // Open + write + verify one file. Checking good() after the writer ran
  // (not just after open) catches mid-write failures: disk-full, the
  // directory vanishing, a revoked permission.
  const auto write_file = [&](const std::string& filename,
                              const auto& writer) {
    const std::string path = (fs::path(directory) / filename).string();
    std::ofstream out(path);
    if (!out) return Fail(error, path, "cannot open for writing");
    writer(out);
    out.flush();
    if (!out.good()) return Fail(error, path, "write failed");
    return true;
  };

  if (!write_file("MANIFEST.tsv", [&](std::ostream& manifest) {
        manifest << "# vantage\tregion\tclock_offset_us\n";
        for (const auto& vantage : dataset.vantages)
          manifest << vantage.name << '\t'
                   << net::RegionShortName(vantage.region) << '\t'
                   << vantage.clock_offset.micros() << '\n';
      }))
    return false;

  for (const auto& vantage : dataset.vantages) {
    if (!write_file(vantage.name + ".blocks.tsv", [&](std::ostream& blocks) {
          blocks << "# local_time_us\thash\tnumber\tkind\n";
          for (const auto& arrival : vantage.block_arrivals)
            blocks << arrival.local_time.micros() << '\t'
                   << ToHex(arrival.hash) << '\t' << arrival.number << '\t'
                   << KindName(arrival.kind) << '\n';
        }))
      return false;

    if (!write_file(vantage.name + ".txs.tsv", [&](std::ostream& txs) {
          txs << "# local_time_us\thash\tsender\tnonce\n";
          for (const auto& arrival : vantage.tx_arrivals)
            txs << arrival.local_time.micros() << '\t' << ToHex(arrival.hash)
                << '\t' << ToHex(arrival.sender) << '\t' << arrival.nonce
                << '\n';
        }))
      return false;

    if (!write_file(vantage.name + ".imports.tsv", [&](std::ostream& imports) {
          imports << "# local_time_us\thash\tnumber\tnew_head\n";
          for (const auto& event : vantage.imports)
            imports << event.local_time.micros() << '\t' << ToHex(event.hash)
                    << '\t' << event.number << '\t' << (event.new_head ? 1 : 0)
                    << '\n';
        }))
      return false;
  }

  return write_file("catalog.tsv", [&](std::ostream& catalog) {
    catalog
        << "# hash\tnumber\tparent\tpool\tempty\tfork_sibling\tmined_at_us\n";
    for (const auto& row : dataset.catalog)
      catalog << ToHex(row.hash) << '\t' << row.number << '\t'
              << ToHex(row.parent) << '\t' << row.pool << '\t'
              << (row.empty ? 1 : 0) << '\t' << (row.fork_sibling ? 1 : 0)
              << '\t' << row.mined_at.micros() << '\n';
  });
}

bool ReadDataset(const std::string& directory, Dataset& out,
                 std::string* error) {
  out = Dataset{};

  // Line-oriented TSV reader: opens `filename`, hands every non-comment line
  // (split on tabs) to `parse`, and reports the failing path *and line
  // number* on malformed records — "which file" alone is useless when a
  // 100 MB log has one truncated row.
  const auto read_file =
      [&](const std::string& filename, std::size_t want_fields,
          const auto& parse) {
        const std::string path = (fs::path(directory) / filename).string();
        std::ifstream in(path);
        if (!in) return Fail(error, path, "cannot open for reading");
        std::string line;
        std::size_t lineno = 0;
        while (std::getline(in, line)) {
          ++lineno;
          if (line.empty() || line[0] == '#') continue;
          const auto fields = SplitTabs(line);
          if (fields.size() != want_fields || !parse(fields))
            return Fail(error, path,
                        "malformed record at line " + std::to_string(lineno));
        }
        if (in.bad()) return Fail(error, path, "read failed");
        return true;
      };

  if (!read_file("MANIFEST.tsv", 3, [&](const std::vector<std::string>& f) {
        VantageLog vantage;
        vantage.name = f[0];
        for (net::Region region : net::AllRegions())
          if (net::RegionShortName(region) == f[1]) vantage.region = region;
        std::int64_t offset_us = 0;
        if (!ParseI64(f[2], offset_us)) return false;
        vantage.clock_offset = Duration::Micros(offset_us);
        out.vantages.push_back(std::move(vantage));
        return true;
      }))
    return false;

  for (auto& vantage : out.vantages) {
    if (!read_file(vantage.name + ".blocks.tsv", 4,
                   [&](const std::vector<std::string>& f) {
                     BlockArrival arrival;
                     std::int64_t us = 0;
                     if (!ParseI64(f[0], us)) return false;
                     arrival.local_time = TimePoint::FromMicros(us);
                     arrival.hash = FixedBytesFromHex<32>(f[1]);
                     if (!ParseU64(f[2], arrival.number)) return false;
                     if (!ParseKind(f[3], arrival.kind)) return false;
                     vantage.block_arrivals.push_back(arrival);
                     return true;
                   }))
      return false;

    if (!read_file(vantage.name + ".txs.tsv", 4,
                   [&](const std::vector<std::string>& f) {
                     TxArrival arrival;
                     std::int64_t us = 0;
                     if (!ParseI64(f[0], us)) return false;
                     arrival.local_time = TimePoint::FromMicros(us);
                     arrival.hash = FixedBytesFromHex<32>(f[1]);
                     arrival.sender = FixedBytesFromHex<20>(f[2]);
                     if (!ParseU64(f[3], arrival.nonce)) return false;
                     vantage.tx_arrivals.push_back(arrival);
                     return true;
                   }))
      return false;

    if (!read_file(vantage.name + ".imports.tsv", 4,
                   [&](const std::vector<std::string>& f) {
                     ImportEvent event;
                     std::int64_t us = 0;
                     if (!ParseI64(f[0], us)) return false;
                     event.local_time = TimePoint::FromMicros(us);
                     event.hash = FixedBytesFromHex<32>(f[1]);
                     if (!ParseU64(f[2], event.number)) return false;
                     event.new_head = f[3] == "1";
                     vantage.imports.push_back(event);
                     return true;
                   }))
      return false;
  }

  return read_file("catalog.tsv", 7, [&](const std::vector<std::string>& f) {
    CatalogBlock row;
    row.hash = FixedBytesFromHex<32>(f[0]);
    if (!ParseU64(f[1], row.number)) return false;
    row.parent = FixedBytesFromHex<32>(f[2]);
    row.pool = f[3];
    row.empty = f[4] == "1";
    row.fork_sibling = f[5] == "1";
    std::int64_t us = 0;
    if (!ParseI64(f[6], us)) return false;
    row.mined_at = TimePoint::FromMicros(us);
    out.catalog.push_back(std::move(row));
    return true;
  });
}

}  // namespace ethsim::measure
