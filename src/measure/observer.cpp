#include "measure/observer.hpp"

#include "common/keccak.hpp"

namespace ethsim::measure {

namespace {

void UpdateU64(Keccak256& hasher, std::uint64_t value) {
  std::uint8_t buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
  }
  hasher.Update(std::span<const std::uint8_t>(buf, 8));
}

}  // namespace

Observer::Observer(std::string name, net::Region region,
                   sim::Simulator& simulator, Duration clock_offset)
    : name_(std::move(name)),
      region_(region),
      sim_(simulator),
      clock_offset_(clock_offset) {}

void Observer::Attach(eth::EthNode& node) {
  node_ = &node;
  node.set_sink(this);
}

void Observer::OnBlockMessage(BlockMsgKind kind, const Hash32& hash,
                              std::uint64_t number, const chain::Block* full) {
  (void)full;
  const TimePoint now = LocalNow();
  blocks_.push_back(BlockArrival{hash, number, kind, now});
  first_block_.try_emplace(hash, now);
}

void Observer::OnTransactionMessage(const chain::Transaction& tx) {
  const TimePoint now = LocalNow();
  txs_.push_back(TxArrival{tx.hash, tx.sender, tx.nonce, now});
  first_tx_.try_emplace(tx.hash, now);
}

void Observer::OnBlockImported(const chain::BlockPtr& block, bool new_head) {
  imports_.push_back(
      ImportEvent{block->hash, block->header.number, new_head, LocalNow()});
}

void Observer::IngestBlockArrival(const BlockArrival& arrival) {
  blocks_.push_back(arrival);
  auto [it, inserted] = first_block_.try_emplace(arrival.hash, arrival.local_time);
  if (!inserted && arrival.local_time < it->second)
    it->second = arrival.local_time;
}

void Observer::IngestTxArrival(const TxArrival& arrival) {
  txs_.push_back(arrival);
  auto [it, inserted] = first_tx_.try_emplace(arrival.hash, arrival.local_time);
  if (!inserted && arrival.local_time < it->second)
    it->second = arrival.local_time;
}

void Observer::IngestImport(const ImportEvent& event) {
  imports_.push_back(event);
}

Hash32 Observer::Digest() const {
  Keccak256 hasher;
  hasher.Update(name_);
  UpdateU64(hasher, static_cast<std::uint64_t>(clock_offset_.micros()));
  UpdateU64(hasher, blocks_.size());
  for (const BlockArrival& b : blocks_) {
    hasher.Update(std::span<const std::uint8_t>(b.hash.data(), Hash32::size()));
    UpdateU64(hasher, b.number);
    UpdateU64(hasher, static_cast<std::uint64_t>(b.kind));
    UpdateU64(hasher, static_cast<std::uint64_t>(b.local_time.micros()));
  }
  UpdateU64(hasher, txs_.size());
  for (const TxArrival& t : txs_) {
    hasher.Update(std::span<const std::uint8_t>(t.hash.data(), Hash32::size()));
    UpdateU64(hasher, t.nonce);
    UpdateU64(hasher, static_cast<std::uint64_t>(t.local_time.micros()));
  }
  UpdateU64(hasher, imports_.size());
  for (const ImportEvent& e : imports_) {
    hasher.Update(std::span<const std::uint8_t>(e.hash.data(), Hash32::size()));
    UpdateU64(hasher, e.number);
    UpdateU64(hasher, e.new_head ? 1 : 0);
    UpdateU64(hasher, static_cast<std::uint64_t>(e.local_time.micros()));
  }
  return hasher.Final();
}

}  // namespace ethsim::measure
