#include "measure/observer.hpp"

namespace ethsim::measure {

Observer::Observer(std::string name, net::Region region,
                   sim::Simulator& simulator, Duration clock_offset)
    : name_(std::move(name)),
      region_(region),
      sim_(simulator),
      clock_offset_(clock_offset) {}

void Observer::Attach(eth::EthNode& node) {
  node_ = &node;
  node.set_sink(this);
}

void Observer::OnBlockMessage(BlockMsgKind kind, const Hash32& hash,
                              std::uint64_t number, const chain::Block* full) {
  (void)full;
  const TimePoint now = LocalNow();
  blocks_.push_back(BlockArrival{hash, number, kind, now});
  first_block_.try_emplace(hash, now);
}

void Observer::OnTransactionMessage(const chain::Transaction& tx) {
  const TimePoint now = LocalNow();
  txs_.push_back(TxArrival{tx.hash, tx.sender, tx.nonce, now});
  first_tx_.try_emplace(tx.hash, now);
}

void Observer::OnBlockImported(const chain::BlockPtr& block, bool new_head) {
  imports_.push_back(
      ImportEvent{block->hash, block->header.number, new_head, LocalNow()});
}

void Observer::IngestBlockArrival(const BlockArrival& arrival) {
  blocks_.push_back(arrival);
  auto [it, inserted] = first_block_.try_emplace(arrival.hash, arrival.local_time);
  if (!inserted && arrival.local_time < it->second)
    it->second = arrival.local_time;
}

void Observer::IngestTxArrival(const TxArrival& arrival) {
  txs_.push_back(arrival);
  auto [it, inserted] = first_tx_.try_emplace(arrival.hash, arrival.local_time);
  if (!inserted && arrival.local_time < it->second)
    it->second = arrival.local_time;
}

void Observer::IngestImport(const ImportEvent& event) {
  imports_.push_back(event);
}

}  // namespace ethsim::measure
