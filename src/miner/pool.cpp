#include "miner/pool.hpp"

#include "common/keccak.hpp"

namespace ethsim::miner {

Address PoolCoinbase(const std::string& name) {
  const Hash32 digest = Keccak256Of(name);
  Address addr;
  for (std::size_t i = 0; i < 20; ++i) addr.bytes[i] = digest.bytes[i + 12];
  return addr;
}

namespace {

using net::Region;

PoolSpec Make(std::string name, double share_percent,
              std::vector<GatewaySpec> gateways, PoolPolicy policy) {
  PoolSpec spec;
  spec.coinbase = PoolCoinbase(name);
  spec.name = std::move(name);
  spec.hashrate_share = share_percent / 100.0;
  spec.gateways = std::move(gateways);
  spec.policy = policy;
  return spec;
}

// One-miner-fork policy helper: total rate split 56% same-txset / 44%
// distinct-txset as observed in §V, with 25/1775 of events being triples.
PoolPolicy Policy(double empty_rate, double omf_rate) {
  PoolPolicy p;
  p.empty_block_rate = empty_rate;
  p.one_miner_fork_same_txset_rate = omf_rate * 0.56;
  p.one_miner_fork_distinct_txset_rate = omf_rate * 0.44;
  p.fork_triple_rate = omf_rate > 0 ? 0.014 : 0.0;
  return p;
}

}  // namespace

std::vector<PoolSpec> PaperPools() {
  // Hashrate shares are the paper's Fig 3 percentages. Gateway regions are
  // fitted to Fig 3's first-observation splits (Chinese pools EA-heavy,
  // Ethermine/Nanopool/DwarfPool EU-centric with US presence). Empty-block
  // rates are fitted to Fig 6 (counts per pool out of 2,921 empty blocks in
  // 201,086; Zhizhu's >25% and the zero rows for Nanopool/Miningpoolhub1
  // are as reported). One-miner-fork rates are fitted to the §III-C5 census
  // (~1,775 events over the month, dominated by the large pools).
  std::vector<PoolSpec> pools;
  pools.push_back(Make("Ethermine", 25.32,
                       {{Region::WesternEurope, 0.38},
                        {Region::CentralEurope, 0.47},
                        {Region::NorthAmerica, 0.15}},
                       Policy(0.0234, 0.012)));
  pools.push_back(Make("Sparkpool", 22.88,
                       {{Region::EasternAsia, 0.90},
                        {Region::SoutheastAsia, 0.07},
                        {Region::NorthAmerica, 0.03}},
                       Policy(0.0109, 0.014)));
  pools.push_back(Make("F2pool2", 12.75,
                       {{Region::EasternAsia, 0.95}, {Region::NorthAmerica, 0.05}},
                       Policy(0.0117, 0.010)));
  pools.push_back(Make("Nanopool", 12.10,
                       {{Region::WesternEurope, 0.35},
                        {Region::CentralEurope, 0.35},
                        {Region::EasternEurope, 0.20},
                        {Region::NorthAmerica, 0.10}},
                       Policy(0.0, 0.008)));
  pools.push_back(Make("Miningpoolhub1", 5.61,
                       {{Region::EasternAsia, 0.85}, {Region::NorthAmerica, 0.15}},
                       Policy(0.0, 0.008)));
  pools.push_back(Make("HuoBi.pro", 1.85, {{Region::EasternAsia, 1.0}},
                       Policy(0.0134, 0.004)));
  pools.push_back(Make("Pandapool", 1.82,
                       {{Region::EasternAsia, 0.80}, {Region::NorthAmerica, 0.20}},
                       Policy(0.0164, 0.004)));
  pools.push_back(Make("DwarfPool1", 1.74,
                       {{Region::WesternEurope, 0.40},
                        {Region::CentralEurope, 0.40},
                        {Region::NorthAmerica, 0.20}},
                       Policy(0.0114, 0.003)));
  pools.push_back(Make("Xnpool", 1.34, {{Region::EasternAsia, 1.0}},
                       Policy(0.0130, 0.003)));
  pools.push_back(Make("Uupool", 1.33, {{Region::EasternAsia, 1.0}},
                       Policy(0.0337, 0.003)));
  pools.push_back(Make("Minerall", 1.23,
                       {{Region::EasternEurope, 0.50}, {Region::CentralEurope, 0.50}},
                       Policy(0.0121, 0.002)));
  pools.push_back(Make("Firepool", 1.22,
                       {{Region::EasternAsia, 0.60}, {Region::SoutheastAsia, 0.40}},
                       Policy(0.0102, 0.002)));
  pools.push_back(Make("Zhizhu", 0.85, {{Region::EasternAsia, 1.0}},
                       Policy(0.2516, 0.002)));
  pools.push_back(Make("MiningExpress", 0.81,
                       {{Region::NorthAmerica, 0.50}, {Region::SouthAmerica, 0.50}},
                       Policy(0.0276, 0.002)));
  pools.push_back(Make("Hiveon", 0.77,
                       {{Region::EasternEurope, 0.60}, {Region::CentralEurope, 0.40}},
                       Policy(0.0097, 0.002)));
  pools.push_back(Make("Remaining miners", 8.39,
                       {{Region::NorthAmerica, 0.15},
                        {Region::WesternEurope, 0.20},
                        {Region::CentralEurope, 0.15},
                        {Region::EasternEurope, 0.10},
                        {Region::EasternAsia, 0.25},
                        {Region::SoutheastAsia, 0.08},
                        {Region::Oceania, 0.04},
                        {Region::SouthAmerica, 0.03}},
                       Policy(0.0065, 0.001)));
  // The Etherscan curiosity: a solo miner whose every block is empty.
  pools.push_back(Make("EmptyOnlySolo", 0.004, {{Region::NorthAmerica, 1.0}},
                       Policy(1.0, 0.0)));
  return pools;
}

}  // namespace ethsim::miner
