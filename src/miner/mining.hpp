// The PoW race. A single exponential clock (rate = total_hashrate /
// current_difficulty) decides when the *network* finds a block; an alias
// sampler over hashrate shares decides *which pool* found it. The winner
// assembles on its own — possibly stale — mining context: pools learn about
// new heads only after their gateway imports the block plus a stratum-style
// job-update delay. That staleness window is what generates forks and
// uncles at the observed rate.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chain/block.hpp"
#include "chain/block_arena.hpp"
#include "chain/blocktree.hpp"
#include "chain/difficulty.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "eth/node.hpp"
#include "miner/pool.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"

namespace ethsim::miner {

// Ground-truth record of every block created, kept by the coordinator. The
// analysis pipeline joins observer logs against this catalog (the paper used
// Etherscan/Etherchain for the same purpose).
struct MintRecord {
  chain::BlockPtr block = nullptr;
  std::size_t pool_index = 0;
  TimePoint mined_at;
  bool deliberate_empty = false;
  // One-miner-fork bookkeeping: extra sibling blocks reference the primary.
  bool is_fork_sibling = false;
  Hash32 primary_sibling;   // hash of the primary block (zero if primary)
  bool same_txset_as_primary = false;
};

struct MiningParams {
  Duration target_interval = Duration::Seconds(13.3);
  // Network hashrate in the difficulty's own unit/second; the absolute scale
  // is arbitrary, only difficulty/hashrate (= expected interval) matters.
  double total_hashrate = 150e12;
  std::uint64_t gas_limit = 8'000'000;
  std::size_t max_block_txs = 200;
  chain::DifficultyParams difficulty;
  bool adjust_difficulty = true;
  // §V's proposed protocol change: refuse uncle references to blocks whose
  // miner already produced the main-chain block at the same height. Used by
  // the ablation bench to validate the paper's fix.
  bool forbid_one_miner_uncles = false;
  // Delay between the primary release and its one-miner-fork sibling
  // (distinct gateway/server of the same pool).
  Duration sibling_release_delay = Duration::Millis(150);
};

class MiningCoordinator {
 public:
  // Every block the coordinator mints is adopted into `arena`, which must
  // outlive the coordinator and every node holding handles to its blocks.
  MiningCoordinator(sim::Simulator& simulator, chain::BlockArena& arena,
                    Rng rng, MiningParams params, std::vector<PoolSpec> pools);

  // Registers a gateway node for a pool. The first gateway added for a pool
  // becomes its primary (tx source and default release point).
  void AddGateway(std::size_t pool_index, eth::EthNode* node);

  // Begins the PoW race. Every pool must have at least one gateway.
  void Start();

  // Wires mint/release tracing (kMine category; pid = pool index) and
  // per-pool minted/fork counters. Record-only: never touches rng_ and never
  // schedules events, so an attached race is identical to a detached one.
  void AttachTelemetry(obs::Telemetry* telemetry);

  const std::vector<PoolSpec>& pools() const { return pools_; }
  const std::vector<MintRecord>& minted() const { return minted_; }
  std::uint64_t blocks_found() const { return blocks_found_; }

  // --- fault hooks (driven by fault::FaultController) ---------------------
  // Re-releases any blocks a kStall pool held while its gateways were down.
  // Called by the fault layer after it brings a gateway back online.
  void NotifyGatewayRestored(std::size_t pool_index);
  // Releases that found every gateway offline and were parked (kStall, or
  // kFallback with zero survivors). Each parked block counts once even if it
  // is re-released later.
  std::uint64_t releases_stalled() const { return stalled_releases_; }

  // Pool-gateway health for the state sampler: declared gateways whose node
  // is currently online, and freshly mined blocks parked behind a kStall
  // outage (flushed by NotifyGatewayRestored).
  std::size_t online_gateways() const;
  std::size_t parked_releases() const;

  // The coordinator's reference view (primary gateway of pool 0), used for
  // difficulty pacing and end-of-run analysis.
  const chain::BlockTree& reference_tree() const;

 private:
  struct PoolState {
    std::vector<eth::EthNode*> gateways;
    AliasSampler* gateway_sampler = nullptr;  // built in Start()
    std::unique_ptr<AliasSampler> sampler_storage;
    // The head the pool's workers are currently mining on (job latency
    // behind the gateway's actual head).
    chain::BlockPtr mining_head = nullptr;
    // Blocks parked during a gateway outage, flushed in mint order by
    // NotifyGatewayRestored.
    std::vector<chain::BlockPtr> stalled_blocks;
  };

  void ScheduleNextBlock();
  void OnBlockFound();
  chain::BlockPtr AssembleBlock(std::size_t pool_index, bool force_empty,
                                const chain::BlockPtr& parent,
                                std::uint64_t extra_seed);
  void Release(std::size_t pool_index, const chain::BlockPtr& block);
  void OnGatewayHead(std::size_t pool_index, chain::BlockPtr head);

  sim::Simulator& sim_;
  chain::BlockArena& arena_;
  Rng rng_;
  MiningParams params_;
  std::vector<PoolSpec> pools_;
  std::vector<PoolState> states_;
  std::unique_ptr<AliasSampler> winner_sampler_;
  std::vector<MintRecord> minted_;
  std::uint64_t blocks_found_ = 0;
  std::uint64_t stalled_releases_ = 0;
  bool started_ = false;

  // Telemetry (null = disabled). Per-pool counters are resolved once at
  // attach time; indices line up with pools_.
  obs::Tracer* mine_tracer_ = nullptr;  // kMine category pre-checked
  // Tx-lifecycle recorder: AssembleBlock stamps a kSelected stage (with the
  // winning pool index) for every transaction drawn into a block.
  obs::TxProvRecorder* txprov_ = nullptr;
  std::vector<obs::Counter*> minted_count_;
  std::vector<obs::Counter*> fork_count_;
  std::vector<obs::Counter*> empty_count_;
};

}  // namespace ethsim::miner
