#include "miner/mining.hpp"

#include <algorithm>
#include <cassert>

namespace ethsim::miner {

MiningCoordinator::MiningCoordinator(sim::Simulator& simulator,
                                     chain::BlockArena& arena, Rng rng,
                                     MiningParams params,
                                     std::vector<PoolSpec> pools)
    : sim_(simulator),
      arena_(arena),
      rng_(rng),
      params_(params),
      pools_(std::move(pools)) {
  assert(!pools_.empty());
  states_.resize(pools_.size());
  minted_count_.assign(pools_.size(), nullptr);
  fork_count_.assign(pools_.size(), nullptr);
  empty_count_.assign(pools_.size(), nullptr);
  std::vector<double> shares;
  shares.reserve(pools_.size());
  for (const auto& p : pools_) shares.push_back(p.hashrate_share);
  winner_sampler_ = std::make_unique<AliasSampler>(shares);
}

void MiningCoordinator::AddGateway(std::size_t pool_index, eth::EthNode* node) {
  assert(pool_index < states_.size() && node != nullptr);
  PoolState& state = states_[pool_index];
  state.gateways.push_back(node);
  // Pools retarget after the gateway's import completes plus the stratum
  // job-distribution delay.
  node->set_head_callback([this, pool_index](chain::BlockPtr head) {
    const Duration delay = pools_[pool_index].policy.job_update_delay;
    sim_.Schedule(delay, [this, pool_index, head = std::move(head)]() mutable {
      OnGatewayHead(pool_index, std::move(head));
    });
  });
}

void MiningCoordinator::OnGatewayHead(std::size_t pool_index,
                                      chain::BlockPtr head) {
  PoolState& state = states_[pool_index];
  // Adopt only if strictly better than the current mining target (by the
  // gateway's own total-difficulty view; number is a close deterministic
  // proxy that avoids cross-node tree lookups).
  if (!state.mining_head ||
      head->header.number > state.mining_head->header.number ||
      (head->header.number == state.mining_head->header.number &&
       head->hash != state.mining_head->hash &&
       head->header.difficulty > state.mining_head->header.difficulty)) {
    state.mining_head = std::move(head);
  }
}

void MiningCoordinator::AttachTelemetry(obs::Telemetry* telemetry) {
  mine_tracer_ = nullptr;
  txprov_ = nullptr;
  minted_count_.assign(pools_.size(), nullptr);
  fork_count_.assign(pools_.size(), nullptr);
  empty_count_.assign(pools_.size(), nullptr);
  if (telemetry == nullptr) return;

  txprov_ = telemetry->txprov();

  if (obs::Tracer* tracer = telemetry->tracer();
      tracer != nullptr && tracer->enabled(obs::TraceCategory::kMine)) {
    mine_tracer_ = tracer;
  }
  if (obs::MetricsRegistry* metrics = telemetry->metrics()) {
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      const std::string_view pool_name = pools_[i].name;
      minted_count_[i] = metrics->GetCounter(
          obs::LabeledName("mine.minted", {{"pool", pool_name}}));
      fork_count_[i] = metrics->GetCounter(
          obs::LabeledName("mine.fork_siblings", {{"pool", pool_name}}));
      empty_count_[i] = metrics->GetCounter(
          obs::LabeledName("mine.empty_blocks", {{"pool", pool_name}}));
    }
  }
}

const chain::BlockTree& MiningCoordinator::reference_tree() const {
  assert(!states_[0].gateways.empty());
  return states_[0].gateways.front()->tree();
}

void MiningCoordinator::Start() {
  assert(!started_);
  started_ = true;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    PoolState& state = states_[i];
    assert(!state.gateways.empty() && "every pool needs a gateway");
    // Release weights follow the spec when one node was registered per
    // declared gateway; otherwise fall back to uniform.
    std::vector<double> weights;
    if (pools_[i].gateways.size() == state.gateways.size()) {
      for (const auto& gw : pools_[i].gateways) weights.push_back(gw.weight);
    } else {
      weights.assign(state.gateways.size(), 1.0);
    }
    state.sampler_storage = std::make_unique<AliasSampler>(weights);
    state.gateway_sampler = state.sampler_storage.get();
    state.mining_head = state.gateways.front()->tree().head();
  }
  ScheduleNextBlock();
}

void MiningCoordinator::ScheduleNextBlock() {
  // Expected interval = difficulty / hashrate. With adjustment enabled the
  // pace follows the chain's difficulty; otherwise it stays at the target.
  double mean_seconds = params_.target_interval.seconds();
  if (params_.adjust_difficulty) {
    const chain::BlockPtr ref = states_[0].mining_head;
    if (ref && ref->header.difficulty > 0)
      mean_seconds =
          static_cast<double>(ref->header.difficulty) / params_.total_hashrate;
  }
  const Duration wait = Duration::Seconds(rng_.NextExponential(mean_seconds));
  sim_.Schedule(wait, [this] { OnBlockFound(); });
}

chain::BlockPtr MiningCoordinator::AssembleBlock(std::size_t pool_index,
                                                 bool force_empty,
                                                 const chain::BlockPtr& parent,
                                                 std::uint64_t extra_seed) {
  const PoolSpec& spec = pools_[pool_index];
  PoolState& state = states_[pool_index];
  eth::EthNode* primary = state.gateways.front();

  chain::Block block;
  block.header.parent_hash = parent->hash;
  block.header.number = parent->header.number + 1;
  block.header.miner = spec.coinbase;
  block.header.gas_limit = params_.gas_limit;
  block.header.mix_seed = rng_.Next() ^ extra_seed;

  // Timestamp in whole seconds, strictly increasing along the chain.
  block.header.timestamp =
      std::max<std::uint64_t>(parent->header.timestamp + 1,
                              static_cast<std::uint64_t>(sim_.Now().seconds()));

  if (params_.adjust_difficulty) {
    block.header.difficulty = chain::NextDifficulty(
        parent->header.difficulty, parent->header.timestamp,
        !parent->uncles.empty(), block.header.timestamp, block.header.number,
        params_.difficulty);
  } else {
    block.header.difficulty = parent->header.difficulty;
  }

  if (!force_empty) {
    block.transactions =
        primary->pool().SelectForBlock(params_.gas_limit, params_.max_block_txs);
  }
  // Uncle references come from the primary gateway's tree, which may not yet
  // contain the (stale) mining head — in that case skip uncles.
  if (primary->tree().Contains(parent->hash))
    block.uncles = primary->tree().UncleCandidates(
        parent->hash, 2, params_.forbid_one_miner_uncles);

  block.Seal();
  chain::BlockPtr sealed = arena_.Adopt(std::move(block));
  // Selection is attributed to the primary gateway's host: its pool is where
  // the transactions were drawn from. Fork siblings copy the primary's
  // transaction set and are deliberately not re-recorded as selections.
  if (txprov_ != nullptr) [[unlikely]]
    for (const auto& tx : sealed->transactions)
      txprov_->RecordSelected(primary->host(), tx.hash, sim_.Now().micros(),
                              static_cast<std::uint16_t>(pool_index),
                              sealed->hash, sealed->header.number);
  return sealed;
}

void MiningCoordinator::Release(std::size_t pool_index,
                                const chain::BlockPtr& block) {
  PoolState& state = states_[pool_index];
  // Sample the gateway FIRST, unconditionally: the draw keeps its exact
  // position in the random stream whether or not the sampled gateway is up,
  // so arming a gateway outage can never shift an unrelated stream.
  eth::EthNode* gateway =
      state.gateways[state.gateway_sampler->Sample(rng_)];
  if (!gateway->online()) [[unlikely]] {
    gateway = nullptr;
    if (pools_[pool_index].policy.gateway_outage ==
        GatewayOutagePolicy::kFallback) {
      // Deterministic failover: first online gateway in registration order.
      for (eth::EthNode* candidate : state.gateways) {
        if (candidate->online()) {
          gateway = candidate;
          break;
        }
      }
    }
    if (gateway == nullptr) {
      // Park the block; NotifyGatewayRestored re-releases it. The pool's own
      // workers still switch to it — pool-internal propagation does not go
      // through the public gateway.
      ++stalled_releases_;
      state.stalled_blocks.push_back(block);
      if (mine_tracer_ != nullptr) [[unlikely]] {
        obs::TraceEvent event;
        event.name = "mine.release_stalled";
        event.arg_kind = pools_[pool_index].name.c_str();
        event.ts_us = sim_.Now().micros();
        event.arg_hash = block->hash.prefix_u64();
        event.arg_num = block->header.number;
        event.pid = static_cast<std::uint32_t>(pool_index);
        event.cat = obs::TraceCategory::kMine;
        event.phase = 'i';
        mine_tracer_->Emit(event);
      }
      if (!state.mining_head ||
          block->header.number > state.mining_head->header.number)
        state.mining_head = block;
      return;
    }
  }
  if (mine_tracer_ != nullptr) [[unlikely]] {
    obs::TraceEvent event;
    event.name = "mine.release";
    event.arg_kind = pools_[pool_index].name.c_str();
    event.ts_us = sim_.Now().micros();
    event.arg_hash = block->hash.prefix_u64();
    event.arg_num = block->header.number;
    event.pid = static_cast<std::uint32_t>(pool_index);
    event.tid = gateway->host();
    event.cat = obs::TraceCategory::kMine;
    event.phase = 'i';
    mine_tracer_->Emit(event);
  }
  gateway->InjectMinedBlock(block);
  // Pool-local propagation is immediate: its own workers switch as soon as
  // their own block is out (no job-update delay for self-mined blocks).
  if (!state.mining_head ||
      block->header.number > state.mining_head->header.number)
    state.mining_head = block;
}

void MiningCoordinator::NotifyGatewayRestored(std::size_t pool_index) {
  assert(pool_index < states_.size());
  PoolState& state = states_[pool_index];
  if (state.stalled_blocks.empty()) return;
  // Flush in mint order. Release() may park a block again if the restored
  // gateway crashed in the meantime, so swap the queue out first.
  std::vector<chain::BlockPtr> pending;
  pending.swap(state.stalled_blocks);
  for (const chain::BlockPtr& block : pending) Release(pool_index, block);
}

std::size_t MiningCoordinator::online_gateways() const {
  std::size_t online = 0;
  for (const PoolState& state : states_)
    for (const eth::EthNode* gateway : state.gateways)
      if (gateway->online()) ++online;
  return online;
}

std::size_t MiningCoordinator::parked_releases() const {
  std::size_t parked = 0;
  for (const PoolState& state : states_) parked += state.stalled_blocks.size();
  return parked;
}

void MiningCoordinator::OnBlockFound() {
  ++blocks_found_;
  const std::size_t winner = winner_sampler_->Sample(rng_);
  const PoolSpec& spec = pools_[winner];
  PoolState& state = states_[winner];
  const chain::BlockPtr parent = state.mining_head;
  assert(parent);

  const bool force_empty = rng_.NextBool(spec.policy.empty_block_rate);
  const chain::BlockPtr primary = AssembleBlock(winner, force_empty, parent, 0);

  minted_.push_back(MintRecord{primary, winner, sim_.Now(), force_empty, false,
                               Hash32{}, false});
  if (minted_count_[winner] != nullptr) [[unlikely]] {
    minted_count_[winner]->Add();
    if (force_empty) empty_count_[winner]->Add();
  }
  if (mine_tracer_ != nullptr) [[unlikely]] {
    obs::TraceEvent event;
    event.name = "mine.mint";
    event.arg_kind = spec.name.c_str();
    event.ts_us = sim_.Now().micros();
    event.arg_hash = primary->hash.prefix_u64();
    event.arg_num = primary->header.number;
    event.pid = static_cast<std::uint32_t>(winner);
    event.cat = obs::TraceCategory::kMine;
    event.phase = 'i';
    mine_tracer_->Emit(event);
  }
  Release(winner, primary);

  // One-miner forks (§III-C5): the pool emits one (or, rarely, two) extra
  // sibling blocks at the same height.
  const double p_same = spec.policy.one_miner_fork_same_txset_rate;
  const double p_distinct = spec.policy.one_miner_fork_distinct_txset_rate;
  const double roll = rng_.NextDouble();
  if (roll < p_same + p_distinct) {
    const bool want_same = roll < p_same;
    const int extra = rng_.NextBool(spec.policy.fork_triple_rate) ? 2 : 1;
    for (int i = 0; i < extra; ++i) {
      chain::BlockPtr sibling = nullptr;
      if (want_same) {
        // Partition/server race: identical content, new PoW identity.
        chain::Block copy{*primary};
        copy.header.mix_seed = rng_.Next();
        copy.Seal();
        sibling = arena_.Adopt(std::move(copy));
      } else {
        // Intentional double-mining with a different transaction set.
        chain::Block copy{*primary};
        copy.header.mix_seed = rng_.Next();
        if (!copy.transactions.empty()) {
          copy.transactions.pop_back();
        } else {
          // Nothing to vary: flip emptiness if the pool has anything queued.
          copy.transactions = state.gateways.front()->pool().SelectForBlock(
              params_.gas_limit, 1);
        }
        copy.Seal();
        sibling = arena_.Adopt(std::move(copy));
      }
      const bool actually_same =
          sibling->header.tx_root == primary->header.tx_root;
      minted_.push_back(MintRecord{sibling, winner, sim_.Now(), force_empty,
                                   true, primary->hash, actually_same});
      if (fork_count_[winner] != nullptr) [[unlikely]] fork_count_[winner]->Add();
      if (mine_tracer_ != nullptr) [[unlikely]] {
        obs::TraceEvent event;
        event.name = "mine.fork_sibling";
        event.arg_kind = spec.name.c_str();
        event.ts_us = sim_.Now().micros();
        event.arg_hash = sibling->hash.prefix_u64();
        event.arg_num = sibling->header.number;
        event.pid = static_cast<std::uint32_t>(winner);
        event.cat = obs::TraceCategory::kMine;
        event.phase = 'i';
        mine_tracer_->Emit(event);
      }
      sim_.Schedule(params_.sibling_release_delay * static_cast<double>(i + 1),
                    [this, winner, sibling] { Release(winner, sibling); });
    }
  }

  ScheduleNextBlock();
}

}  // namespace ethsim::miner
