// Mining pools as first-class citizens (the paper's central modeling point):
// each pool has a hashrate share, a coinbase, geographically placed gateway
// nodes, and a policy block covering the selfish behaviors the paper
// documents — deliberate empty blocks (§III-C3) and one-miner forks
// (§III-C5, both the same-txset and distinct-txset variants).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/geo.hpp"

namespace ethsim::miner {

struct GatewaySpec {
  net::Region region = net::Region::WesternEurope;
  // Relative probability that a freshly mined block is released through a
  // gateway in this region.
  double weight = 1.0;
};

// What a pool does when the gateway sampled for a release is offline
// (crashed / churned out by the fault layer).
enum class GatewayOutagePolicy {
  // Re-route through the first online gateway (a multi-homed pool's normal
  // failover). Falls back to stalling only when *every* gateway is down.
  kFallback,
  // Hold the block and re-release when a gateway is restored (a pool whose
  // release pipeline is hard-wired to one egress point).
  kStall,
};

struct PoolPolicy {
  // Probability that a found block is deliberately left empty (no time spent
  // packing/validating transactions — the head-start strategy).
  double empty_block_rate = 0.0;

  // Failover behavior during an injected gateway outage (src/fault).
  GatewayOutagePolicy gateway_outage = GatewayOutagePolicy::kFallback;

  // One-miner forks: probability that, having found a block, the pool emits
  // a second distinct block at the same height.
  //   same-txset     — a pool partition / redundant server race: identical
  //                    content, different mix_seed.
  //   distinct-txset — intentional double-mining for the extra uncle reward.
  double one_miner_fork_same_txset_rate = 0.0;
  double one_miner_fork_distinct_txset_rate = 0.0;
  // Given a one-miner fork, probability of a triple instead of a pair.
  double fork_triple_rate = 0.0;

  // Extra delay between a gateway head update and the pool's workers
  // actually mining on it (stratum job distribution latency). This is the
  // fork window: larger values mean more stale blocks.
  Duration job_update_delay = Duration::Millis(800);
};

struct PoolSpec {
  std::string name;
  double hashrate_share = 0.0;  // fraction of total network hashrate
  Address coinbase;             // identifies the pool on-chain
  std::vector<GatewaySpec> gateways;
  PoolPolicy policy;
};

// The 15 named pools of Fig 3 with their measured hashrate shares, plus the
// 8.39% "Remaining miners" bucket and the curious always-empty solo miner
// the paper found on Etherscan. Gateway placement and policy rates are
// fitted so the downstream measurements reproduce Figs 2, 3, 6, 7 and the
// §III-C5 one-miner-fork census (see DESIGN.md).
std::vector<PoolSpec> PaperPools();

// Deterministic coinbase for a pool name (keccak-derived).
Address PoolCoinbase(const std::string& name);

}  // namespace ethsim::miner
