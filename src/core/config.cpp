#include "core/config.hpp"

namespace ethsim::core {

std::string ExperimentConfig::Validate() const {
  // Probabilities feed Rng::NextBool unchecked: a negative value silently
  // never fires, > 1 always fires — both are config bugs, not models.
  if (workload.burst_prob < 0 || workload.burst_prob > 1)
    return "workload.burst_prob must be in [0, 1]";
  if (workload.inversion_prob < 0 || workload.inversion_prob > 1)
    return "workload.inversion_prob must be in [0, 1]";
  if (workload.inversion_delay_mean_s < 0)
    return "workload.inversion_delay_mean_s must be >= 0";
  if (workload.payload_mean_bytes < 0)
    return "workload.payload_mean_bytes must be >= 0";
  if (workload_plan.empty() && workload.accounts == 0)
    return "workload.accounts must be >= 1";
  if (net_params.drop_prob < 0 || net_params.drop_prob > 1)
    return "net.drop_prob must be in [0, 1]";
  if (net_params.slow_path_prob < 0 || net_params.slow_path_prob > 1)
    return "net.slow_path_prob must be in [0, 1]";
  if (!workload_plan.empty()) {
    if (std::string problem = workload_plan.Validate(); !problem.empty())
      return "workload_plan: " + problem;
  }
  if (!fault_plan.empty()) {
    if (std::string problem = fault_plan.Validate(); !problem.empty())
      return "fault_plan: " + problem;
  }
  return {};
}

}  // namespace ethsim::core

namespace ethsim::core::presets {

namespace {

ExperimentConfig Base() {
  ExperimentConfig cfg;
  cfg.pools = miner::PaperPools();
  cfg.observer_config.max_peers = 1'000'000;  // §II: "unlimited"
  cfg.gateway_config.max_peers = 100;
  // Main-study observers connect broadly, gateways included. In a 15k-node
  // network they would mostly NOT peer with gateways, but they would sit in
  // a dense regional fabric; in a hundreds-sized world, gateway adjacency is
  // the faithful substitute for that density (see DESIGN.md scale notes).
  cfg.vantages = {
      {"NA", net::Region::NorthAmerica, 100},
      {"EA", net::Region::EasternAsia, 100},
      {"WE", net::Region::WesternEurope, 100},
      {"CE", net::Region::CentralEurope, 100},
  };
  return cfg;
}

}  // namespace

ExperimentConfig PaperStudy() {
  ExperimentConfig cfg = Base();
  cfg.peer_nodes = 300;
  cfg.duration = Duration::Hours(2);
  return cfg;
}

ExperimentConfig SmallStudy(std::size_t nodes) {
  ExperimentConfig cfg = Base();
  cfg.peer_nodes = nodes;
  cfg.duration = Duration::Minutes(30);
  const std::size_t peers = std::max<std::size_t>(8, nodes / 2);
  for (auto& v : cfg.vantages) v.connect_peers = peers;
  cfg.workload.accounts = std::max<std::size_t>(20, nodes);
  return cfg;
}

ExperimentConfig DefaultPeersStudy() {
  ExperimentConfig cfg = Base();
  // A larger overlay lengthens the multi-hop wave relative to one link
  // latency, which is what the redundancy statistics are sensitive to.
  cfg.peer_nodes = 320;
  cfg.duration = Duration::Hours(1);
  cfg.vantages = {{"WE-default", net::Region::WesternEurope, 25}};
  // The subsidiary node runs an unmodified-default config: 25 peers, and at
  // mainnet scale those peers are essentially never pool gateways.
  cfg.observer_config.max_peers = 25;
  cfg.observers_avoid_gateways = true;
  return cfg;
}

}  // namespace ethsim::core::presets
