#include "core/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/diag.hpp"

namespace ethsim::core {

SeedSweepRunner::SeedSweepRunner(SweepOptions options)
    : threads_(options.threads) {
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

void SeedSweepRunner::ForEachIndex(
    std::size_t jobs, const std::function<void(std::size_t)>& job) const {
  if (jobs == 0) return;
  const std::size_t workers = std::min(threads_, jobs);
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) job(i);
    return;
  }

  // Work-stealing-free dynamic dispatch: one shared atomic ticket counter.
  // Each job owns its own world, so the only cross-thread state is the
  // counter and the first-error latch.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        job(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<std::unique_ptr<Experiment>> SeedSweepRunner::RunExperiments(
    const ExperimentConfig& base, const std::vector<std::uint64_t>& seeds) const {
  std::vector<std::unique_ptr<Experiment>> results(seeds.size());
  // Per-seed completion reporting (ETHSIM_PROGRESS): completion order is
  // wall-clock nondeterministic, which is why this is stderr operator output
  // and never part of an artifact.
  const bool report = obs::ProgressEnabled();
  std::atomic<std::size_t> completed{0};
  ForEachIndex(seeds.size(), [&](std::size_t i) {
    ExperimentConfig cfg = base;
    cfg.seed = seeds[i];
    auto exp = std::make_unique<Experiment>(std::move(cfg));
    exp->Run();
    results[i] = std::move(exp);  // distinct slot per job: no synchronization
    if (report) {
      const std::size_t done =
          completed.fetch_add(1, std::memory_order_relaxed) + 1;
      obs::LogProgress("sweep", "seed %llu finished (%zu/%zu)",
                       static_cast<unsigned long long>(seeds[i]), done,
                       seeds.size());
    }
  });
  return results;
}

std::vector<std::uint64_t> ConsecutiveSeeds(std::uint64_t base_seed,
                                            std::size_t count) {
  std::vector<std::uint64_t> seeds(count);
  for (std::size_t i = 0; i < count; ++i) seeds[i] = base_seed + i;
  return seeds;
}

obs::MetricsRegistry MergeSweepMetrics(
    const std::vector<std::unique_ptr<Experiment>>& experiments) {
  obs::MetricsRegistry merged;
  // Strict seed order (= vector order): counter/histogram addition is
  // commutative but keeping the merge order fixed makes the invariance
  // obvious and future-proofs non-commutative instruments.
  for (const auto& experiment : experiments) {
    if (experiment == nullptr || experiment->telemetry() == nullptr) continue;
    if (const obs::MetricsRegistry* metrics =
            experiment->telemetry()->metrics())
      merged.MergeFrom(*metrics);
  }
  return merged;
}

obs::TimeSeriesLog MergeSweepTimeSeries(
    const std::vector<std::unique_ptr<Experiment>>& experiments) {
  obs::TimeSeriesLog merged;
  bool have_base = false;
  // Strict seed order, same rationale as MergeSweepMetrics: element-wise
  // addition commutes, but a fixed order keeps the thread-count invariance
  // self-evident.
  for (const auto& experiment : experiments) {
    if (experiment == nullptr || experiment->telemetry() == nullptr) continue;
    const obs::StateSampler* sampler = experiment->telemetry()->sampler();
    if (sampler == nullptr) continue;
    if (!have_base) {
      merged = sampler->log();
      have_base = true;
    } else if (!merged.Accumulate(sampler->log())) {
      // Unreachable for a well-formed sweep (one config => one series table
      // and cadence; ragged lengths pool fine); surfaced instead of
      // silently mis-merging.
      obs::LogWarn("sweep", "time-series shape mismatch at seed %llu; "
                   "member skipped in merge",
                   static_cast<unsigned long long>(
                       experiment->config().seed));
    }
  }
  return merged;
}

}  // namespace ethsim::core
