// Run provenance for experiments: canonical config digests, determinism
// digests over run outputs, and the glue that writes a complete artifact set
// (manifest + enabled telemetry streams) next to a run's other outputs.
//
// Naming note: this file answers "WHICH run is this?" (digests over config
// and outputs; the manifest schema itself lives in obs/run_manifest). The
// similarly named obs/provenance_dag answers "WHAT happened inside the run?"
// — the per-message dissemination recorder behind ETHSIM_PROVENANCE.
//
// The config digest covers every field that can change results and excludes
// the seed and the telemetry gates: all members of one seed sweep share a
// digest, and turning tracing on cannot change what run the manifest claims
// to describe. The determinism digest covers the outputs themselves (head
// hash, event count, per-vantage observer log digests) — two runs at equal
// config digest + seed must have equal determinism digests, and the
// determinism tests assert exactly that.
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "obs/run_manifest.hpp"

namespace ethsim::core {

// Keccak over a canonical key=value dump of the config (seed and telemetry
// gates excluded; see file comment).
Hash32 ConfigDigest(const ExperimentConfig& config);

// Keccak over the run's observable outputs: head hash/number, engine event
// count, and every observer's log digest in build order. Requires Run() to
// have completed.
Hash32 DeterminismDigest(const Experiment& experiment);

// Fills a manifest from a finished experiment (digests, head, event count,
// enabled telemetry streams, build identity).
obs::RunManifest BuildRunManifest(const Experiment& experiment,
                                  std::string_view tool);

// Writes manifest.json plus the enabled telemetry streams into `dir`
// (created if missing). Returns false and fills `error` (when non-null)
// with the failing path.
bool WriteRunArtifacts(const Experiment& experiment, const std::string& dir,
                       std::string_view tool, std::string* error = nullptr);

}  // namespace ethsim::core
