#include "core/workload.hpp"

#include <cassert>

#include "common/keccak.hpp"

namespace ethsim::core {

namespace {
Address AccountAddress(std::uint64_t index) {
  const Hash32 digest = Keccak256Of("account-" + std::to_string(index));
  Address addr;
  for (std::size_t i = 0; i < 20; ++i) addr.bytes[i] = digest.bytes[i];
  return addr;
}
}  // namespace

TxWorkload::TxWorkload(sim::Simulator& simulator, Rng rng,
                       TxWorkloadParams params,
                       std::vector<eth::EthNode*> frontends)
    : sim_(simulator),
      rng_(rng),
      params_(params),
      frontends_(std::move(frontends)),
      next_nonce_(params.accounts, 0) {
  assert(!frontends_.empty());
  assert(params_.accounts > 0);
  account_addr_.reserve(params_.accounts);
  for (std::size_t i = 0; i < params_.accounts; ++i)
    account_addr_.push_back(AccountAddress(i));
}

void TxWorkload::Start() {
  if (params_.rate_per_sec <= 0) return;
  ScheduleNext();
}

void TxWorkload::ScheduleNext() {
  const Duration wait =
      Duration::Seconds(rng_.NextExponential(1.0 / params_.rate_per_sec));
  sim_.Schedule(wait, [this] { SubmitOne(); });
}

chain::Transaction TxWorkload::BuildTx(std::size_t account) {
  const std::uint64_t nonce = next_nonce_[account]++;
  std::uint32_t payload = 0;
  if (params_.payload_mean_bytes > 0)
    payload = static_cast<std::uint32_t>(
        rng_.NextExponential(params_.payload_mean_bytes));
  // Gas prices 1..100 gwei-ish; spread exercises the pool's price ordering.
  const std::uint64_t gas_price = 1 + rng_.NextBounded(100);
  const Address to = AccountAddress(rng_.NextBounded(params_.accounts));
  return chain::MakeTransaction(account_addr_[account], nonce, to,
                                /*value=*/1 + rng_.NextBounded(1'000'000),
                                gas_price, payload);
}

void TxWorkload::SubmitOne() {
  const std::size_t account = rng_.NextBounded(params_.accounts);
  const std::size_t frontend = rng_.NextBounded(frontends_.size());

  const chain::Transaction tx = BuildTx(account);
  const bool burst = rng_.NextBool(params_.burst_prob);

  if (!burst) {
    submitted_.push_back(
        SubmittedTx{tx.hash, tx.sender, tx.nonce, sim_.Now(), false});
    frontends_[frontend]->SubmitTransaction(tx);
    ScheduleNext();
    return;
  }

  // A burst: the follow-up nonce leaves from a different frontend. Normally
  // it trails by a few ms (two gossip waves race; the higher nonce sometimes
  // wins at a vantage — §III-C2). In an *inversion*, the lower nonce is the
  // one stuck behind a slow frontend for seconds, so the higher nonce
  // provably propagates first and must wait in every txpool's queued bucket.
  const chain::Transaction follow = BuildTx(account);
  std::size_t other = rng_.NextBounded(frontends_.size());
  if (frontends_.size() > 1 && other == frontend)
    other = (other + 1) % frontends_.size();

  Duration first_delay = Duration::Micros(0);
  Duration follow_delay = Duration::Millis(
      1 + static_cast<std::int64_t>(rng_.NextBounded(40)));
  if (rng_.NextBool(params_.inversion_prob)) {
    first_delay =
        Duration::Seconds(rng_.NextExponential(params_.inversion_delay_mean_s));
    follow_delay = Duration::Micros(0);
  }

  submitted_.push_back(SubmittedTx{tx.hash, tx.sender, tx.nonce,
                                   sim_.Now() + first_delay, true});
  submitted_.push_back(SubmittedTx{follow.hash, follow.sender, follow.nonce,
                                   sim_.Now() + follow_delay, true});
  sim_.Schedule(first_delay, [this, frontend, tx] {
    frontends_[frontend]->SubmitTransaction(tx);
  });
  sim_.Schedule(follow_delay, [this, other, follow] {
    frontends_[other]->SubmitTransaction(follow);
  });

  ScheduleNext();
}

}  // namespace ethsim::core
