// Cross-seed parallelism. A single run is strictly sequential (the event
// queue is a total order), but the statistical power of every reproduced
// figure comes from averaging *independent* (config, seed) runs — and those
// share no mutable state whatsoever. SeedSweepRunner fans N Experiments out
// over a thread pool (each worker owns its Simulator/Network/Rng world) and
// returns them in seed order, so the merged statistics are identical no
// matter how many threads ran or how the OS scheduled them. Determinism per
// seed is untouched: a sweep member is bit-for-bit the run a sequential
// `Experiment{cfg}.Run()` would have produced.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/experiment.hpp"

namespace ethsim::core {

struct SweepOptions {
  // Worker threads; 0 = std::thread::hardware_concurrency() (at least 1).
  std::size_t threads = 0;
};

class SeedSweepRunner {
 public:
  explicit SeedSweepRunner(SweepOptions options = {});

  // Runs `base` once per seed (base.seed is replaced) and returns the
  // finished experiments in seed order. Experiments are fully retained so
  // callers can build per-seed StudyInputs and merge analysis results
  // deterministically.
  std::vector<std::unique_ptr<Experiment>> RunExperiments(
      const ExperimentConfig& base, const std::vector<std::uint64_t>& seeds) const;

  // Generic deterministic fan-out: invokes job(i) for every i in [0, jobs)
  // across the pool. Jobs must be independent; any exception is rethrown on
  // the calling thread after all workers join. Result ordering is the
  // caller's concern (write to pre-sized slot i).
  void ForEachIndex(std::size_t jobs,
                    const std::function<void(std::size_t)>& job) const;

  std::size_t threads() const { return threads_; }

 private:
  std::size_t threads_;
};

// Convenience: {base_seed, base_seed+1, ..., base_seed+count-1}.
std::vector<std::uint64_t> ConsecutiveSeeds(std::uint64_t base_seed,
                                            std::size_t count);

// Merges every sweep member's metrics registry into one, strictly in seed
// order (the vector order RunExperiments guarantees). Each per-seed registry
// is deterministic and the merge is order-fixed, so the result is invariant
// under SweepOptions::threads / ETHSIM_SWEEP_THREADS — the merge-invariance
// test pins this. Members without metrics enabled contribute nothing.
obs::MetricsRegistry MergeSweepMetrics(
    const std::vector<std::unique_ptr<Experiment>>& experiments);

// Merges every sweep member's sampled time series (ETHSIM_SAMPLE) into one
// log, strictly in seed order, summing each series element-wise — the
// pooled-backlog view across N independent simulated months. All members
// run one config, so the series tables and cadence are identical by
// construction; ragged sample counts (members run for different spans) pool
// over the shared time prefix with the longest tail kept. Like
// MergeSweepMetrics, the fixed merge order makes the result invariant under
// SweepOptions::threads. Members without a sampler contribute nothing; the
// result is empty when none sampled.
obs::TimeSeriesLog MergeSweepTimeSeries(
    const std::vector<std::unique_ptr<Experiment>>& experiments);

}  // namespace ethsim::core
