#include "core/provenance.hpp"

#include <filesystem>
#include <sstream>

#include "common/keccak.hpp"

namespace ethsim::core {

namespace {

// Canonical config dump: one "key=value\n" line per field, fixed order.
// Floating-point values are printed with max_digits10 so two configs differ
// in the dump iff they differ as values.
class CanonicalDump {
 public:
  CanonicalDump() { out_.precision(17); }

  template <typename T>
  void Field(std::string_view key, const T& value) {
    out_ << key << '=' << value << '\n';
  }
  void Field(std::string_view key, Duration d) {
    out_ << key << '=' << d.micros() << "us\n";
  }
  void Field(std::string_view key, bool b) {
    out_ << key << '=' << (b ? 1 : 0) << '\n';
  }

  std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

void DumpNodeConfig(CanonicalDump& dump, std::string_view prefix,
                    const eth::NodeConfig& cfg) {
  const std::string p(prefix);
  dump.Field(p + ".max_peers", cfg.max_peers);
  dump.Field(p + ".relay_mode", static_cast<int>(cfg.relay_mode));
  dump.Field(p + ".tx_flush_interval", cfg.tx_flush_interval);
  dump.Field(p + ".header_check_delay", cfg.header_check_delay);
  dump.Field(p + ".base_validation", cfg.base_validation);
  dump.Field(p + ".per_tx_validation", cfg.per_tx_validation);
  dump.Field(p + ".validation_speed_factor", cfg.validation_speed_factor);
  dump.Field(p + ".known_txs_cap", cfg.known_txs_cap);
  dump.Field(p + ".known_blocks_cap", cfg.known_blocks_cap);
  dump.Field(p + ".seen_txs_cap", cfg.seen_txs_cap);
  dump.Field(p + ".fetch_retry_timeout", cfg.fetch_retry_timeout);
}

void UpdateU64(Keccak256& hasher, std::uint64_t value) {
  std::uint8_t buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
  }
  hasher.Update(std::span<const std::uint8_t>(buf, 8));
}

}  // namespace

Hash32 ConfigDigest(const ExperimentConfig& config) {
  CanonicalDump dump;
  dump.Field("schema", "ethsim-config-v1");
  // Seed and telemetry gates deliberately excluded (see header).
  dump.Field("duration", config.duration);
  dump.Field("peer_nodes", config.peer_nodes);
  for (std::size_t i = 0; i < config.node_region_weights.size(); ++i)
    dump.Field("region_weight." + std::to_string(i),
               config.node_region_weights[i]);
  dump.Field("dials_per_node", config.dials_per_node);
  dump.Field("plain_validation_mu", config.plain_validation_mu);
  dump.Field("plain_validation_sigma", config.plain_validation_sigma);
  DumpNodeConfig(dump, "node", config.node_config);
  DumpNodeConfig(dump, "observer", config.observer_config);
  DumpNodeConfig(dump, "gateway", config.gateway_config);
  dump.Field("gateway_dials", config.gateway_dials);

  dump.Field("net.latency_scale", config.net_params.latency_scale);
  dump.Field("net.jitter_sigma", config.net_params.jitter_sigma);
  dump.Field("net.per_message_overhead", config.net_params.per_message_overhead);
  dump.Field("net.slow_path_prob", config.net_params.slow_path_prob);
  dump.Field("net.slow_path_factor_max", config.net_params.slow_path_factor_max);
  dump.Field("net.drop_prob", config.net_params.drop_prob);

  for (std::size_t i = 0; i < config.vantages.size(); ++i) {
    const VantageSpec& v = config.vantages[i];
    const std::string p = "vantage." + std::to_string(i);
    dump.Field(p + ".name", v.name);
    dump.Field(p + ".region", static_cast<int>(v.region));
    dump.Field(p + ".connect_peers", v.connect_peers);
  }
  dump.Field("observers_avoid_gateways", config.observers_avoid_gateways);

  dump.Field("mining.target_interval", config.mining.target_interval);
  dump.Field("mining.total_hashrate", config.mining.total_hashrate);
  dump.Field("mining.gas_limit", config.mining.gas_limit);
  dump.Field("mining.max_block_txs", config.mining.max_block_txs);
  dump.Field("mining.bomb_delay_blocks",
             config.mining.difficulty.bomb_delay_blocks);
  dump.Field("mining.minimum_difficulty",
             config.mining.difficulty.minimum_difficulty);
  dump.Field("mining.adjust_difficulty", config.mining.adjust_difficulty);
  dump.Field("mining.forbid_one_miner_uncles",
             config.mining.forbid_one_miner_uncles);
  dump.Field("mining.sibling_release_delay",
             config.mining.sibling_release_delay);

  for (std::size_t i = 0; i < config.pools.size(); ++i) {
    const miner::PoolSpec& pool = config.pools[i];
    const std::string p = "pool." + std::to_string(i);
    dump.Field(p + ".name", pool.name);
    dump.Field(p + ".hashrate_share", pool.hashrate_share);
    dump.Field(p + ".coinbase", ToHex(pool.coinbase));
    for (std::size_t g = 0; g < pool.gateways.size(); ++g) {
      const std::string gp = p + ".gateway." + std::to_string(g);
      dump.Field(gp + ".region", static_cast<int>(pool.gateways[g].region));
      dump.Field(gp + ".weight", pool.gateways[g].weight);
    }
    dump.Field(p + ".empty_block_rate", pool.policy.empty_block_rate);
    dump.Field(p + ".fork_same_rate",
               pool.policy.one_miner_fork_same_txset_rate);
    dump.Field(p + ".fork_distinct_rate",
               pool.policy.one_miner_fork_distinct_txset_rate);
    dump.Field(p + ".fork_triple_rate", pool.policy.fork_triple_rate);
    dump.Field(p + ".job_update_delay", pool.policy.job_update_delay);
    // Appended only when non-default, so digests of pre-existing configs
    // (which could not express an outage policy) stay bit-identical.
    if (pool.policy.gateway_outage != miner::GatewayOutagePolicy::kFallback)
      dump.Field(p + ".gateway_outage",
                 static_cast<int>(pool.policy.gateway_outage));
  }

  dump.Field("workload.rate_per_sec", config.workload.rate_per_sec);
  dump.Field("workload.accounts", config.workload.accounts);
  dump.Field("workload.burst_prob", config.workload.burst_prob);
  dump.Field("workload.inversion_prob", config.workload.inversion_prob);
  dump.Field("workload.inversion_delay_mean_s",
             config.workload.inversion_delay_mean_s);
  dump.Field("workload.payload_mean_bytes", config.workload.payload_mean_bytes);
  dump.Field("genesis_number", config.genesis_number);

  // Traffic plan: part of the experiment identity, but appended only when
  // non-empty so that the digest of every default-workload config is
  // bit-identical to what it was before the workload subsystem existed.
  if (!config.workload_plan.empty()) {
    for (std::size_t i = 0; i < config.workload_plan.sources.size(); ++i) {
      const workload::TrafficSource& src = config.workload_plan.sources[i];
      const std::string p = "workload_plan." + std::to_string(i);
      dump.Field(p + ".kind", workload::SourceKindName(src.kind));
      dump.Field(p + ".name", src.name);
      dump.Field(p + ".rate_per_sec", src.rate_per_sec);
      dump.Field(p + ".accounts", src.accounts);
      dump.Field(p + ".account_offset", src.account_offset);
      dump.Field(p + ".zipf_exponent", src.zipf_exponent);
      dump.Field(p + ".region", src.region);
      dump.Field(p + ".diurnal_amplitude", src.diurnal_amplitude);
      dump.Field(p + ".peak_hour", src.peak_hour);
      dump.Field(p + ".surge_at", Duration::Micros(src.surge_at.micros()));
      dump.Field(p + ".surge_window", src.surge_window);
      dump.Field(p + ".surge_multiplier", src.surge_multiplier);
      dump.Field(p + ".clients", src.clients);
      dump.Field(p + ".think_time_mean", src.think_time_mean);
      dump.Field(p + ".commit_depth", src.commit_depth);
      dump.Field(p + ".poll_interval", src.poll_interval);
      dump.Field(p + ".payload_mean_bytes", src.payload_mean_bytes);
      dump.Field(p + ".fee.gas_price_mu", src.fee.gas_price_mu);
      dump.Field(p + ".fee.gas_price_sigma", src.fee.gas_price_sigma);
      dump.Field(p + ".fee.replacement_deadline",
                 src.fee.replacement_deadline);
      dump.Field(p + ".fee.escalation_factor", src.fee.escalation_factor);
      dump.Field(p + ".fee.max_replacements", src.fee.max_replacements);
    }
  }

  // Fault timeline: part of the experiment identity, but appended only when
  // non-empty so that the digest of every fault-free config is bit-identical
  // to what it was before the fault layer existed.
  if (!config.fault_plan.empty()) {
    dump.Field("fault.rejoin_dials", config.fault_plan.rejoin_dials);
    for (std::size_t i = 0; i < config.fault_plan.events.size(); ++i) {
      const fault::FaultEvent& event = config.fault_plan.events[i];
      const std::string p = "fault." + std::to_string(i);
      dump.Field(p + ".kind", fault::FaultKindName(event.kind));
      dump.Field(p + ".at", Duration::Micros(event.at.micros()));
      dump.Field(p + ".duration", event.duration);
      dump.Field(p + ".count", event.count);
      dump.Field(p + ".churn_rate_per_min", event.churn_rate_per_min);
      dump.Field(p + ".churn_downtime_mean", event.churn_downtime_mean);
      dump.Field(p + ".region_mask", event.region_mask);
      dump.Field(p + ".latency_factor", event.latency_factor);
      dump.Field(p + ".bandwidth_factor", event.bandwidth_factor);
      dump.Field(p + ".extra_drop_prob", event.extra_drop_prob);
      dump.Field(p + ".pool_index", event.pool_index);
      dump.Field(p + ".observer_index", event.observer_index);
      dump.Field(p + ".clock_delta", event.clock_delta);
    }
  }

  return Keccak256Of(dump.str());
}

Hash32 DeterminismDigest(const Experiment& experiment) {
  Keccak256 hasher;
  const chain::BlockPtr head = experiment.reference_tree().head();
  hasher.Update(std::span<const std::uint8_t>(head->hash.data(),
                                              Hash32::size()));
  UpdateU64(hasher, head->header.number);
  UpdateU64(hasher, experiment.coordinator().blocks_found());
  for (const auto& observer : experiment.observers()) {
    const Hash32 digest = observer->Digest();
    hasher.Update(std::span<const std::uint8_t>(digest.data(), Hash32::size()));
  }
  return hasher.Final();
}

obs::RunManifest BuildRunManifest(const Experiment& experiment,
                                  std::string_view tool) {
  const ExperimentConfig& config = experiment.config();
  obs::RunManifest manifest;
  manifest.tool = std::string(tool);
  manifest.seed = config.seed;
  manifest.config_digest = ToHex(ConfigDigest(config));
  manifest.determinism_digest = ToHex(DeterminismDigest(experiment));
  const chain::BlockPtr head = experiment.reference_tree().head();
  manifest.events_executed = experiment.simulator().events_executed();
  manifest.head_number = head->header.number;
  manifest.head_hash = ToHex(head->hash);
  manifest.sim_duration_s = config.duration.seconds();
  manifest.metrics_enabled = config.telemetry.metrics;
  manifest.trace_enabled = config.telemetry.trace;
  manifest.profile_enabled = config.telemetry.profile;
  manifest.provenance_enabled = config.telemetry.provenance;
  manifest.extra.emplace_back("peer_nodes", std::to_string(config.peer_nodes));
  manifest.extra.emplace_back("vantages",
                              std::to_string(config.vantages.size()));
  manifest.extra.emplace_back("pools", std::to_string(config.pools.size()));
  manifest.extra.emplace_back(
      "blocks_found", std::to_string(experiment.coordinator().blocks_found()));
  manifest.extra.emplace_back(
      "messages_dropped",
      std::to_string(experiment.network().messages_dropped()));
  // Provenance extras only when the recorder ran: provenance-off manifests
  // are byte-identical to pre-provenance output.
  if (const obs::Telemetry* telemetry = experiment.telemetry()) {
    if (const obs::ProvenanceRecorder* prov = telemetry->provenance()) {
      manifest.extra.emplace_back("provenance_edges",
                                  std::to_string(prov->edges_recorded()));
      manifest.extra.emplace_back("provenance_violations",
                                  std::to_string(prov->violations()));
    }
    // Sampler watermarks only when the recorder ran: sampler-off manifests
    // are byte-identical to pre-sampler output.
    if (const obs::StateSampler* sampler = telemetry->sampler()) {
      manifest.sample_enabled = true;
      manifest.watermarks = sampler->Watermarks();
      manifest.extra.emplace_back(
          "sample_interval_us", std::to_string(sampler->interval_us()));
      manifest.extra.emplace_back("samples",
                                  std::to_string(sampler->sample_count()));
    }
    // Tx-lifecycle extras only when the recorder ran: txprov-off manifests
    // are byte-identical to pre-txprov output.
    if (const obs::TxProvRecorder* txprov = telemetry->txprov()) {
      manifest.txprov_enabled = true;
      manifest.extra.emplace_back("txprov_records",
                                  std::to_string(txprov->records_recorded()));
      manifest.extra.emplace_back("txprov_violations",
                                  std::to_string(txprov->violations()));
    }
  }
  // Workload-plan extras only when a plan ran: default-workload manifests
  // are byte-identical to pre-workload-subsystem output.
  const workload::WorkloadGenerator& wl = experiment.workload();
  if (!wl.plan().empty()) {
    manifest.extra.emplace_back(
        "workload_sources", std::to_string(wl.plan().sources.size()));
    manifest.extra.emplace_back("workload_submitted",
                                std::to_string(wl.total_submitted()));
    manifest.extra.emplace_back("workload_replacements",
                                std::to_string(wl.replacements_issued()));
    manifest.extra.emplace_back(
        "workload_closed_loop_completed",
        std::to_string(wl.closed_loop_completed()));
    manifest.extra.emplace_back("workload_in_flight_end",
                                std::to_string(wl.tracked_in_flight()));
    for (std::size_t i = 0; i < wl.plan().sources.size(); ++i) {
      const workload::TrafficSource& src = wl.plan().sources[i];
      manifest.extra.emplace_back(
          "workload_source." + std::to_string(i),
          src.name + ":" + std::string(workload::SourceKindName(src.kind)) +
              ":" + std::to_string(wl.source_submitted(i)) + ":" +
              std::to_string(wl.source_included(i)));
    }
  }

  // Fault extras only when a controller ran: fault-free manifests are
  // byte-identical to pre-fault-layer output.
  if (const fault::FaultController* fault = experiment.fault()) {
    manifest.extra.emplace_back(
        "fault_events", std::to_string(fault->plan().events.size()));
    manifest.extra.emplace_back(
        "fault_injected", std::to_string(fault->stats().total_injected()));
    manifest.extra.emplace_back("fault_crashes",
                                std::to_string(fault->stats().crashes));
    manifest.extra.emplace_back("fault_restarts",
                                std::to_string(fault->stats().restarts));
    // Executed partition windows, so offline analysis (ethsim_inspect
    // --timeseries) can slice sampler series against the fault timeline
    // without re-deriving it from the plan.
    const std::vector<fault::PartitionWindow>& windows =
        fault->partition_windows();
    for (std::size_t i = 0; i < windows.size(); ++i) {
      manifest.extra.emplace_back(
          "partition_window." + std::to_string(i),
          std::to_string(windows[i].start.micros()) + ".." +
              std::to_string(windows[i].end.micros()));
    }
  }
  return manifest;
}

bool WriteRunArtifacts(const Experiment& experiment, const std::string& dir,
                       std::string_view tool, std::string* error) {
  namespace fs = std::filesystem;
  obs::RunManifest manifest = BuildRunManifest(experiment, tool);
  if (const obs::Telemetry* telemetry = experiment.telemetry()) {
    if (!telemetry->WriteArtifacts(dir, error)) return false;
  } else {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      if (error != nullptr) *error = dir + ": " + ec.message();
      return false;
    }
  }
  return obs::WriteManifest((fs::path(dir) / "manifest.json").string(),
                            manifest, error);
}

}  // namespace ethsim::core
