#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "net/geo.hpp"
#include "p2p/kademlia.hpp"

namespace ethsim::core {

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {}

void Experiment::Build() {
  if (built_) return;
  built_ = true;

  // Telemetry first: every component below attaches to it during
  // construction. A fully-disabled config keeps the pointer null, so the
  // attach calls become no-ops and hot paths pay one predicted branch.
  if (config_.telemetry.any())
    telemetry_ = std::make_unique<obs::Telemetry>(config_.telemetry);

  Rng master{config_.seed};
  net_ = std::make_unique<net::Network>(sim_, master.Fork("network"),
                                        config_.net_params);
  net_->AttachTelemetry(telemetry_.get());
  if (telemetry_ != nullptr) sim_.set_profiler(telemetry_->profiler());

  // Genesis difficulty pins the initial pace to the target interval.
  chain::Block genesis;
  genesis.header.number = config_.genesis_number;
  genesis.header.difficulty = static_cast<std::uint64_t>(
      config_.mining.total_hashrate * config_.mining.target_interval.seconds());
  genesis.Seal();
  genesis_ = arena_.Adopt(std::move(genesis));

  Rng ids = master.Fork("node-ids");
  Rng placement = master.Fork("placement");
  Rng node_rngs = master.Fork("node-rngs");

  auto add_node = [&](net::Region region, double bandwidth,
                      const eth::NodeConfig& node_cfg) -> eth::EthNode* {
    const net::HostId host = net_->AddHost({region, bandwidth});
    nodes_.push_back(std::make_unique<eth::EthNode>(
        sim_, *net_, host, p2p::RandomNodeId(ids), genesis_, node_cfg,
        node_rngs.Fork(nodes_.size())));
    nodes_.back()->AttachTelemetry(
        telemetry_.get(), static_cast<std::uint32_t>(nodes_.size() - 1));
    return nodes_.back().get();
  };

  // 1. Pool gateways (well-provisioned hosts), one node per declared
  //    gateway, in spec order so release weights line up.
  coordinator_ = std::make_unique<miner::MiningCoordinator>(
      sim_, arena_, master.Fork("mining"), config_.mining, config_.pools);
  coordinator_->AttachTelemetry(telemetry_.get());
  for (std::size_t p = 0; p < config_.pools.size(); ++p) {
    for (const auto& gw : config_.pools[p].gateways) {
      eth::EthNode* node = add_node(gw.region, 1e9, config_.gateway_config);
      coordinator_->AddGateway(p, node);
    }
  }

  // 2. Plain overlay nodes, placed by the region weight vector.
  const std::vector<double> region_weights(config_.node_region_weights.begin(),
                                           config_.node_region_weights.end());
  AliasSampler region_sampler{region_weights};
  for (std::size_t i = 0; i < config_.peer_nodes; ++i) {
    const auto region =
        static_cast<net::Region>(region_sampler.Sample(placement));
    eth::NodeConfig node_cfg = config_.node_config;
    node_cfg.validation_speed_factor = std::clamp(
        placement.NextLogNormal(config_.plain_validation_mu,
                                config_.plain_validation_sigma),
        0.3, 12.0);
    add_node(region, 100e6, node_cfg);
  }

  // 3. Vantage observers (§II: backbone-grade links, instrumented client).
  net::ClockModel clocks{master.Fork("ntp")};
  for (const auto& vantage : config_.vantages) {
    eth::EthNode* node = add_node(vantage.region, 8e9, config_.observer_config);
    observers_.push_back(std::make_unique<measure::Observer>(
        vantage.name, vantage.region, sim_, clocks.SampleOffset()));
    observers_.back()->Attach(*node);
  }

  BuildTopology(master.Fork("topology"));

  // 4. Transaction workload submits through plain nodes (not gateways, not
  //    observers — vantages are passive, like the paper's).
  std::vector<eth::EthNode*> frontends;
  const std::size_t gateway_count = nodes_.size() - observers_.size() -
                                    config_.peer_nodes;
  for (std::size_t i = gateway_count; i < gateway_count + config_.peer_nodes; ++i)
    frontends.push_back(nodes_[i].get());
  if (frontends.empty())  // degenerate configs: fall back to gateways
    for (std::size_t i = 0; i < gateway_count; ++i)
      frontends.push_back(nodes_[i].get());
  workload_ = std::make_unique<TxWorkload>(sim_, master.Fork("workload"),
                                           config_.workload, frontends);

  // 5. Fault controller — only when the plan is non-empty, so a fault-free
  //    config builds the exact object graph (and RNG stream set) it always
  //    did. Fork("fault") is keyed off the master seed alone, so armed fault
  //    schedules are independent of every other stream.
  if (!config_.fault_plan.empty()) {
    fault_ = std::make_unique<fault::FaultController>(
        sim_, master.Fork("fault"), config_.fault_plan);
    fault::FaultController::Bindings bindings;
    bindings.network = net_.get();
    bindings.nodes.reserve(nodes_.size());
    for (const auto& node : nodes_) bindings.nodes.push_back(node.get());
    bindings.gateway_count = gateway_count;
    bindings.observer_start = nodes_.size() - observers_.size();
    bindings.coordinator = coordinator_.get();
    for (const auto& observer : observers_)
      bindings.observers.push_back(observer.get());
    for (std::size_t p = 0; p < config_.pools.size(); ++p)
      for (std::size_t g = 0; g < config_.pools[p].gateways.size(); ++g)
        bindings.gateway_pool.push_back(p);
    fault_->Bind(std::move(bindings));
    fault_->AttachTelemetry(telemetry_.get());
    fault_->Arm();
  }
}

void Experiment::BuildTopology(Rng rng) {
  // Discovery: every node's routing table is filled from three random
  // bootstrap nodes via iterative FindNode lookups against the global id
  // registry, then the node dials lookup results — geography-blind, as in
  // devp2p. Observers dial `connect_peers` peers; plain nodes dial
  // `dials_per_node` and accept the rest.
  const std::size_t n = nodes_.size();
  assert(n >= 2);

  std::unordered_map<Hash32, eth::EthNode*> by_id;
  std::vector<p2p::NodeId> all_ids;
  all_ids.reserve(n);
  for (const auto& node : nodes_) {
    by_id.emplace(node->id(), node.get());
    all_ids.push_back(node->id());
  }

  // Full registry tables (the steady-state content of a long-running
  // discovery daemon).
  std::unordered_map<Hash32, p2p::RoutingTable> tables;
  for (const auto& id : all_ids) {
    p2p::RoutingTable table{id};
    for (const auto& other : all_ids) table.Add(other);
    tables.emplace(id, std::move(table));
  }
  const auto query = [&](const p2p::NodeId& node, const p2p::NodeId& target) {
    return tables.at(node).Closest(target, p2p::kBucketSize);
  };

  const std::size_t observer_start = n - observers_.size();
  std::size_t gateway_count = 0;
  for (const auto& pool : config_.pools) gateway_count += pool.gateways.size();
  for (std::size_t i = 0; i < n; ++i) {
    eth::EthNode& node = *nodes_[i];
    const bool is_observer = i >= observer_start;
    const bool is_gateway = i < gateway_count;
    const std::size_t want_dials =
        is_observer ? config_.vantages[i - observer_start].connect_peers
        : is_gateway ? config_.gateway_dials
                     : config_.dials_per_node;

    // Local table seeded with 3 bootstrap nodes.
    p2p::RoutingTable local{node.id()};
    for (int b = 0; b < 3; ++b)
      local.Add(all_ids[rng.NextBounded(all_ids.size())]);

    // Observers optionally skip gateway nodes (a small-world scale
    // correction; see ExperimentConfig::observers_avoid_gateways).
    std::unordered_map<Hash32, char> gateway_ids;
    if (is_observer && config_.observers_avoid_gateways)
      for (std::size_t g = 0; g < gateway_count; ++g)
        gateway_ids.emplace(nodes_[g]->id(), 0);
    auto dialable = [&](const p2p::NodeId& candidate) {
      return !gateway_ids.contains(candidate);
    };

    std::size_t dialed = 0;
    int lookups = 0;
    const int max_lookups = static_cast<int>(want_dials) + 32;
    while (dialed < want_dials && lookups < max_lookups) {
      ++lookups;
      const p2p::NodeId target = p2p::RandomNodeId(rng);
      const auto found =
          p2p::IterativeFindNode(local, target, p2p::kBucketSize, query);
      for (const auto& candidate : found) {
        if (dialed >= want_dials) break;
        if (candidate == node.id() || !dialable(candidate)) continue;
        eth::EthNode* other = by_id.at(candidate);
        if (eth::EthNode::Connect(node, *other)) ++dialed;
        local.Add(candidate);
      }
    }
    // Fallback for saturated neighborhoods: random dials.
    int attempts = 0;
    while (dialed < want_dials && attempts < 20 * static_cast<int>(n)) {
      ++attempts;
      eth::EthNode* other = nodes_[rng.NextBounded(n)].get();
      if (!dialable(other->id())) continue;
      if (eth::EthNode::Connect(node, *other)) ++dialed;
    }
  }
}

void Experiment::Run() {
  if (ran_) return;
  ran_ = true;
  Build();

  coordinator_->Start();
  workload_->Start();
  sim_.RunUntil(TimePoint::FromMicros(config_.duration.micros()));

  // Pin the provenance artifact's cutoff: edges scheduled past the end of
  // the run were still in flight and must not count as delivered.
  if (telemetry_ != nullptr) {
    if (obs::ProvenanceRecorder* prov = telemetry_->provenance())
      prov->SetEndTime(sim_.Now().micros());
  }

  // One top-level span covering the whole simulated interval, so a loaded
  // trace shows the run envelope even with aggressive category filters.
  if (telemetry_ != nullptr) {
    if (obs::Tracer* tracer = telemetry_->tracer();
        tracer != nullptr && tracer->enabled(obs::TraceCategory::kSim)) {
      obs::TraceEvent event;
      event.name = "experiment.run";
      event.ts_us = 0;
      event.dur_us = sim_.Now().micros();
      event.arg_num = sim_.events_executed();
      event.cat = obs::TraceCategory::kSim;
      event.phase = 'X';
      tracer->Emit(event);
    }
  }
}

}  // namespace ethsim::core
