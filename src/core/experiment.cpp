#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "net/geo.hpp"
#include "obs/diag.hpp"
#include "obs/progress.hpp"
#include "p2p/kademlia.hpp"

namespace ethsim::core {

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {}

void Experiment::Build() {
  if (built_) return;
  built_ = true;

  // Reject structurally invalid configs up front (negative probabilities
  // would otherwise flow into Rng::NextBool unchecked), and surface the one
  // legal-but-surprising setting: rate 0 with no plan means no transactions
  // are ever submitted.
  if (const std::string problem = config_.Validate(); !problem.empty()) {
    obs::LogError("config", "invalid experiment config: %s", problem.c_str());
    throw std::invalid_argument("ExperimentConfig: " + problem);
  }
  if (config_.workload_plan.empty() && config_.workload.rate_per_sec <= 0)
    obs::LogWarn("config",
                 "workload.rate_per_sec <= 0 with an empty workload plan: "
                 "no transactions will be submitted this run");

  // Telemetry first: every component below attaches to it during
  // construction. A fully-disabled config keeps the pointer null, so the
  // attach calls become no-ops and hot paths pay one predicted branch.
  if (config_.telemetry.any())
    telemetry_ = std::make_unique<obs::Telemetry>(config_.telemetry);

  Rng master{config_.seed};
  net_ = std::make_unique<net::Network>(sim_, master.Fork("network"),
                                        config_.net_params);
  net_->AttachTelemetry(telemetry_.get());
  if (telemetry_ != nullptr) sim_.set_profiler(telemetry_->profiler());

  // Genesis difficulty pins the initial pace to the target interval.
  chain::Block genesis;
  genesis.header.number = config_.genesis_number;
  genesis.header.difficulty = static_cast<std::uint64_t>(
      config_.mining.total_hashrate * config_.mining.target_interval.seconds());
  genesis.Seal();
  genesis_ = arena_.Adopt(std::move(genesis));

  Rng ids = master.Fork("node-ids");
  Rng placement = master.Fork("placement");
  Rng node_rngs = master.Fork("node-rngs");

  auto add_node = [&](net::Region region, double bandwidth,
                      const eth::NodeConfig& node_cfg) -> eth::EthNode* {
    const net::HostId host = net_->AddHost({region, bandwidth});
    nodes_.push_back(std::make_unique<eth::EthNode>(
        sim_, *net_, host, p2p::RandomNodeId(ids), genesis_, node_cfg,
        node_rngs.Fork(nodes_.size())));
    nodes_.back()->AttachTelemetry(
        telemetry_.get(), static_cast<std::uint32_t>(nodes_.size() - 1));
    return nodes_.back().get();
  };

  // 1. Pool gateways (well-provisioned hosts), one node per declared
  //    gateway, in spec order so release weights line up.
  coordinator_ = std::make_unique<miner::MiningCoordinator>(
      sim_, arena_, master.Fork("mining"), config_.mining, config_.pools);
  coordinator_->AttachTelemetry(telemetry_.get());
  for (std::size_t p = 0; p < config_.pools.size(); ++p) {
    for (const auto& gw : config_.pools[p].gateways) {
      eth::EthNode* node = add_node(gw.region, 1e9, config_.gateway_config);
      coordinator_->AddGateway(p, node);
    }
  }

  // 2. Plain overlay nodes, placed by the region weight vector.
  const std::vector<double> region_weights(config_.node_region_weights.begin(),
                                           config_.node_region_weights.end());
  AliasSampler region_sampler{region_weights};
  for (std::size_t i = 0; i < config_.peer_nodes; ++i) {
    const auto region =
        static_cast<net::Region>(region_sampler.Sample(placement));
    eth::NodeConfig node_cfg = config_.node_config;
    node_cfg.validation_speed_factor = std::clamp(
        placement.NextLogNormal(config_.plain_validation_mu,
                                config_.plain_validation_sigma),
        0.3, 12.0);
    add_node(region, 100e6, node_cfg);
  }

  // 3. Vantage observers (§II: backbone-grade links, instrumented client).
  net::ClockModel clocks{master.Fork("ntp")};
  for (const auto& vantage : config_.vantages) {
    eth::EthNode* node = add_node(vantage.region, 8e9, config_.observer_config);
    observers_.push_back(std::make_unique<measure::Observer>(
        vantage.name, vantage.region, sim_, clocks.SampleOffset()));
    observers_.back()->Attach(*node);
  }

  BuildTopology(master.Fork("topology"));

  // 4. Transaction workload submits through plain nodes (not gateways, not
  //    observers — vantages are passive, like the paper's).
  std::vector<eth::EthNode*> frontends;
  const std::size_t gateway_count = nodes_.size() - observers_.size() -
                                    config_.peer_nodes;
  for (std::size_t i = gateway_count; i < gateway_count + config_.peer_nodes; ++i)
    frontends.push_back(nodes_[i].get());
  if (frontends.empty())  // degenerate configs: fall back to gateways
    for (std::size_t i = 0; i < gateway_count; ++i)
      frontends.push_back(nodes_[i].get());
  workload_ = std::make_unique<workload::WorkloadGenerator>(
      sim_, master.Fork("workload"), config_.workload, config_.workload_plan,
      frontends);
  workload_->AttachTelemetry(telemetry_.get());

  // 5. Fault controller — only when the plan is non-empty, so a fault-free
  //    config builds the exact object graph (and RNG stream set) it always
  //    did. Fork("fault") is keyed off the master seed alone, so armed fault
  //    schedules are independent of every other stream.
  if (!config_.fault_plan.empty()) {
    fault_ = std::make_unique<fault::FaultController>(
        sim_, master.Fork("fault"), config_.fault_plan);
    fault::FaultController::Bindings bindings;
    bindings.network = net_.get();
    bindings.nodes.reserve(nodes_.size());
    for (const auto& node : nodes_) bindings.nodes.push_back(node.get());
    bindings.gateway_count = gateway_count;
    bindings.observer_start = nodes_.size() - observers_.size();
    bindings.coordinator = coordinator_.get();
    for (const auto& observer : observers_)
      bindings.observers.push_back(observer.get());
    for (std::size_t p = 0; p < config_.pools.size(); ++p)
      for (std::size_t g = 0; g < config_.pools[p].gateways.size(); ++g)
        bindings.gateway_pool.push_back(p);
    fault_->Bind(std::move(bindings));
    fault_->AttachTelemetry(telemetry_.get());
    fault_->Arm();
  }

  // 6. State-sampler probes, registered last so every probed component
  //    exists. Registration fixes the series table (a function of config
  //    alone); nothing is scheduled until Run.
  if (telemetry_ != nullptr && telemetry_->sampler() != nullptr)
    RegisterSamplerProbes();

  // 7. Tx-lifecycle recorder roles: the reference view (pool 0's primary
  //    gateway — nodes_[0], built first) anchors inclusion/commit stages;
  //    vantage observers record first-seen. Marked after every node has
  //    registered its host in AttachTelemetry.
  if (telemetry_ != nullptr && telemetry_->txprov() != nullptr) {
    obs::TxProvRecorder* txprov = telemetry_->txprov();
    txprov->MarkAnchor(nodes_.front()->host());
    const std::size_t observer_start = nodes_.size() - observers_.size();
    for (std::size_t i = observer_start; i < nodes_.size(); ++i)
      txprov->MarkVantage(nodes_[i]->host());
  }
}

void Experiment::RegisterSamplerProbes() {
  obs::StateSampler* s = telemetry_->sampler();
  const auto i64 = [](auto v) { return static_cast<std::int64_t>(v); };

  // Engine: event-queue depth and slot-arena occupancy.
  s->AddProbe("sim.queue.pending", [this, i64] { return i64(sim_.pending()); });
  s->AddProbe("sim.arena.slots",
              [this, i64] { return i64(sim_.Snapshot().slots_allocated); });
  s->AddProbe("sim.arena.free",
              [this, i64] { return i64(sim_.Snapshot().free_slots); });

  // Network: transit backlog plus per-reason drop deltas (the mutable `last`
  // capture turns the cumulative census into per-interval deltas; probe
  // state, not simulation state).
  net::Network* net = net_.get();
  s->AddProbe("net.inflight.msgs",
              [net, i64] { return i64(net->inflight_messages()); });
  s->AddProbe("net.inflight.bytes",
              [net, i64] { return i64(net->inflight_bytes()); });
  for (std::size_t r = 0; r < net::kDropReasonCount; ++r) {
    const auto reason = static_cast<net::DropReason>(r);
    s->AddProbe("net.drops." + std::string(net::DropReasonName(reason)),
                [net, reason, last = std::int64_t{0}]() mutable {
                  const auto now =
                      static_cast<std::int64_t>(net->dropped_by(reason));
                  const std::int64_t delta = now - last;
                  last = now;
                  return delta;
                });
  }

  // Chain + eth state, aggregated over the node fleet (sum for backlog mass,
  // max for the worst straggler).
  const auto* nodes = &nodes_;
  const auto fleet = [nodes, i64](auto&& per_node, bool want_max) {
    std::int64_t sum = 0, peak = 0;
    for (const auto& node : *nodes) {
      const std::int64_t v = i64(per_node(*node));
      sum += v;
      peak = std::max(peak, v);
    }
    return want_max ? peak : sum;
  };
  s->AddProbe("txpool.pending.sum", [fleet] {
    return fleet([](const eth::EthNode& n) { return n.pool().pending_count(); },
                 false);
  });
  s->AddProbe("txpool.pending.max", [fleet] {
    return fleet([](const eth::EthNode& n) { return n.pool().pending_count(); },
                 true);
  });
  s->AddProbe("txpool.queued.sum", [fleet] {
    return fleet([](const eth::EthNode& n) { return n.pool().queued_count(); },
                 false);
  });
  s->AddProbe("txpool.heads.sum", [fleet] {
    return fleet([](const eth::EthNode& n) { return n.pool().heads_count(); },
                 false);
  });
  s->AddProbe("chain.blocks.max", [fleet] {
    return fleet([](const eth::EthNode& n) { return n.tree().block_count(); },
                 true);
  });
  s->AddProbe("chain.orphans.sum", [fleet] {
    return fleet([](const eth::EthNode& n) { return n.tree().orphan_count(); },
                 false);
  });
  s->AddProbe("chain.interner.load_permille.max", [fleet] {
    return fleet(
        [](const eth::EthNode& n) { return n.tree().interner_load_permille(); },
        true);
  });
  s->AddProbe("eth.peers.sum", [fleet] {
    return fleet([](const eth::EthNode& n) { return n.peer_count(); }, false);
  });
  s->AddProbe("eth.known.sum", [fleet] {
    return fleet(
        [](const eth::EthNode& n) { return n.known_cache_entries(); }, false);
  });
  s->AddProbe("eth.offline.nodes", [fleet] {
    return fleet([](const eth::EthNode& n) { return n.online() ? 0 : 1; },
                 false);
  });

  // Demand side: cumulative offered load plus a per-interval delta. The
  // closed-loop/replacement series exist exactly when a traffic plan does
  // (series table = pure function of config, like the fault markers below).
  const workload::WorkloadGenerator* wl = workload_.get();
  s->AddProbe("workload.submitted.total",
              [wl, i64] { return i64(wl->total_submitted()); });
  s->AddProbe("workload.offered.delta",
              [wl, last = std::int64_t{0}]() mutable {
                const auto now = static_cast<std::int64_t>(wl->total_submitted());
                const std::int64_t delta = now - last;
                last = now;
                return delta;
              });
  if (!config_.workload_plan.empty()) {
    s->AddProbe("workload.closed_loop.in_flight",
                [wl, i64] { return i64(wl->closed_loop_in_flight()); });
    s->AddProbe("workload.tracked.in_flight",
                [wl, i64] { return i64(wl->tracked_in_flight()); });
    s->AddProbe("workload.replacements.total",
                [wl, i64] { return i64(wl->replacements_issued()); });
  }

  // Mining-pool gateway state.
  const miner::MiningCoordinator* coord = coordinator_.get();
  s->AddProbe("miner.blocks_found",
              [coord, i64] { return i64(coord->blocks_found()); });
  s->AddProbe("miner.gateways.online",
              [coord, i64] { return i64(coord->online_gateways()); });
  s->AddProbe("miner.releases.parked",
              [coord, i64] { return i64(coord->parked_releases()); });

  // Fault-window markers, present exactly when a fault plan is (so the
  // series table stays a pure function of config). These let the inspect
  // tool line a partition window up against the backlog series.
  if (fault_ != nullptr) {
    s->AddProbe("net.partition.active",
                [net] { return net->partition_active() ? 1 : 0; });
    s->AddProbe("net.degradation.active",
                [net] { return net->degradation_active() ? 1 : 0; });
    const fault::FaultController* fc = fault_.get();
    s->AddProbe("fault.injected",
                [fc, i64] { return i64(fc->stats().total_injected()); });
  }
}

void Experiment::ScheduleSamplerTick(obs::StateSampler* sampler,
                                     TimePoint end) {
  const TimePoint next = sim_.Now() + Duration::Micros(sampler->interval_us());
  if (next.micros() > end.micros()) return;
  sim_.ScheduleAt(next, [this, sampler, end] {
    sampler->SampleNow(sim_.Now().micros());
    ScheduleSamplerTick(sampler, end);
  });
}

void Experiment::BuildTopology(Rng rng) {
  // Discovery: every node's routing table is filled from three random
  // bootstrap nodes via iterative FindNode lookups against the global id
  // registry, then the node dials lookup results — geography-blind, as in
  // devp2p. Observers dial `connect_peers` peers; plain nodes dial
  // `dials_per_node` and accept the rest.
  const std::size_t n = nodes_.size();
  assert(n >= 2);

  std::unordered_map<Hash32, eth::EthNode*> by_id;
  std::vector<p2p::NodeId> all_ids;
  all_ids.reserve(n);
  for (const auto& node : nodes_) {
    by_id.emplace(node->id(), node.get());
    all_ids.push_back(node->id());
  }

  // Full registry tables (the steady-state content of a long-running
  // discovery daemon).
  std::unordered_map<Hash32, p2p::RoutingTable> tables;
  for (const auto& id : all_ids) {
    p2p::RoutingTable table{id};
    for (const auto& other : all_ids) table.Add(other);
    tables.emplace(id, std::move(table));
  }
  const auto query = [&](const p2p::NodeId& node, const p2p::NodeId& target) {
    return tables.at(node).Closest(target, p2p::kBucketSize);
  };

  const std::size_t observer_start = n - observers_.size();
  std::size_t gateway_count = 0;
  for (const auto& pool : config_.pools) gateway_count += pool.gateways.size();
  for (std::size_t i = 0; i < n; ++i) {
    eth::EthNode& node = *nodes_[i];
    const bool is_observer = i >= observer_start;
    const bool is_gateway = i < gateway_count;
    const std::size_t want_dials =
        is_observer ? config_.vantages[i - observer_start].connect_peers
        : is_gateway ? config_.gateway_dials
                     : config_.dials_per_node;

    // Local table seeded with 3 bootstrap nodes.
    p2p::RoutingTable local{node.id()};
    for (int b = 0; b < 3; ++b)
      local.Add(all_ids[rng.NextBounded(all_ids.size())]);

    // Observers optionally skip gateway nodes (a small-world scale
    // correction; see ExperimentConfig::observers_avoid_gateways).
    std::unordered_map<Hash32, char> gateway_ids;
    if (is_observer && config_.observers_avoid_gateways)
      for (std::size_t g = 0; g < gateway_count; ++g)
        gateway_ids.emplace(nodes_[g]->id(), 0);
    auto dialable = [&](const p2p::NodeId& candidate) {
      return !gateway_ids.contains(candidate);
    };

    std::size_t dialed = 0;
    int lookups = 0;
    const int max_lookups = static_cast<int>(want_dials) + 32;
    while (dialed < want_dials && lookups < max_lookups) {
      ++lookups;
      const p2p::NodeId target = p2p::RandomNodeId(rng);
      const auto found =
          p2p::IterativeFindNode(local, target, p2p::kBucketSize, query);
      for (const auto& candidate : found) {
        if (dialed >= want_dials) break;
        if (candidate == node.id() || !dialable(candidate)) continue;
        eth::EthNode* other = by_id.at(candidate);
        if (eth::EthNode::Connect(node, *other)) ++dialed;
        local.Add(candidate);
      }
    }
    // Fallback for saturated neighborhoods: random dials.
    int attempts = 0;
    while (dialed < want_dials && attempts < 20 * static_cast<int>(n)) {
      ++attempts;
      eth::EthNode* other = nodes_[rng.NextBounded(n)].get();
      if (!dialable(other->id())) continue;
      if (eth::EthNode::Connect(node, *other)) ++dialed;
    }
  }
}

void Experiment::Run() {
  if (ran_) return;
  ran_ = true;
  Build();

  const TimePoint end = TimePoint::FromMicros(config_.duration.micros());

  // Sampling cadence: one baseline row at t=0 (before any event fires), then
  // a self-rescheduling tick every interval. Gate off -> nothing scheduled,
  // zero RNG draws, goldens byte-identical.
  obs::StateSampler* sampler =
      telemetry_ != nullptr ? telemetry_->sampler() : nullptr;
  if (sampler != nullptr) {
    sampler->SampleNow(0);
    ScheduleSamplerTick(sampler, end);
  }

  coordinator_->Start();
  workload_->Start();

  const obs::ProgressConfig progress_cfg = obs::ProgressConfig::FromEnv();
  if (progress_cfg.enabled) {
    // Chunked RunUntil is execution-order-identical to a single call (events
    // with ts <= boundary fire, the clock snaps to the boundary, and nothing
    // runs between chunks), but the silent path below stays one call so the
    // default configuration is trivially untouched.
    obs::ProgressReporter progress(progress_cfg, "experiment",
                                   config_.duration.micros());
    const std::int64_t total = config_.duration.micros();
    const std::int64_t chunk = std::max<std::int64_t>(total / 128, 1);
    for (std::int64_t t = chunk; t < total; t += chunk) {
      sim_.RunUntil(TimePoint::FromMicros(t));
      progress.Report(sim_.Now().micros(), sim_.events_executed());
    }
    sim_.RunUntil(end);
    progress.Finish(sim_.Now().micros(), sim_.events_executed());
  } else {
    sim_.RunUntil(end);
  }

  // Pin the provenance artifact's cutoff: edges scheduled past the end of
  // the run were still in flight and must not count as delivered.
  if (telemetry_ != nullptr) {
    if (obs::ProvenanceRecorder* prov = telemetry_->provenance())
      prov->SetEndTime(sim_.Now().micros());
    if (obs::TxProvRecorder* txprov = telemetry_->txprov())
      txprov->SetEndTime(sim_.Now().micros());
  }

  // One top-level span covering the whole simulated interval, so a loaded
  // trace shows the run envelope even with aggressive category filters.
  if (telemetry_ != nullptr) {
    if (obs::Tracer* tracer = telemetry_->tracer();
        tracer != nullptr && tracer->enabled(obs::TraceCategory::kSim)) {
      obs::TraceEvent event;
      event.name = "experiment.run";
      event.ts_us = 0;
      event.dur_us = sim_.Now().micros();
      event.arg_num = sim_.events_executed();
      event.cat = obs::TraceCategory::kSim;
      event.phase = 'X';
      tracer->Emit(event);
    }
  }
}

}  // namespace ethsim::core
