// Experiment configuration: everything §II describes — the overlay
// population, the four vantage points, the pool roster, the transaction
// workload — in one value type. A run is a pure function of (config, seed).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "eth/node.hpp"
#include "fault/plan.hpp"
#include "miner/mining.hpp"
#include "miner/pool.hpp"
#include "net/geo.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "workload/plan.hpp"

namespace ethsim::core {

struct VantageSpec {
  std::string name;       // "NA", "EA", ...
  net::Region region = net::Region::WesternEurope;
  // How many peers the measurement node dials. The paper's main vantages ran
  // "unlimited" (>100 connected at all times); the Table II subsidiary run
  // used Geth's default 25.
  std::size_t connect_peers = 100;
};

// The legacy workload parameters now live beside the WorkloadPlan in
// src/workload/plan.hpp; the alias keeps every existing
// `core::TxWorkloadParams` reference working.
using TxWorkloadParams = workload::TxWorkloadParams;

struct ExperimentConfig {
  std::uint64_t seed = 42;
  Duration duration = Duration::Hours(1);

  // Plain (non-gateway, non-observer) overlay nodes and their placement.
  std::size_t peer_nodes = 200;
  std::array<double, net::kRegionCount> node_region_weights{
      0.20, 0.02, 0.19, 0.14, 0.08, 0.27, 0.06, 0.04};
  // Out-dials per plain node (Geth dials ~max_peers/3 and accepts the rest).
  std::size_t dials_per_node = 8;
  // Plain nodes get a lognormal validation-speed factor exp(N(mu, sigma)):
  // commodity hardware imports blocks several times slower than the
  // provisioned gateways/vantages. Median = e^mu.
  double plain_validation_mu = 1.4;
  double plain_validation_sigma = 1.0;

  eth::NodeConfig node_config;      // plain nodes (Geth default: 25 peers)
  eth::NodeConfig observer_config;  // vantage nodes (effectively unlimited)
  // Pool gateways run deliberately well-connected nodes (high maxpeers,
  // aggressive dialing) — that density is what lets a pool's region dominate
  // first observations (Figs 2-3).
  eth::NodeConfig gateway_config;
  std::size_t gateway_dials = 25;

  net::NetworkParams net_params;

  std::vector<VantageSpec> vantages;
  // Scale correction: in a 15k-node network a 25-peer client almost never
  // peers directly with a pool gateway (~0.3% of nodes); in our hundreds-
  // sized world gateways are ~10% of nodes. When set, observers dial only
  // plain nodes, restoring the realistic peer mix (used by the Table II
  // redundancy study, where peer identity drives the statistic).
  bool observers_avoid_gateways = false;

  miner::MiningParams mining;
  std::vector<miner::PoolSpec> pools;

  TxWorkloadParams workload;

  // Declarative traffic plan (empty by default). An empty plan is bit-for-bit
  // inert: the generator runs the legacy Poisson+burst+inversion process with
  // the historical draw order, so every pre-plan golden (datasets, head hash,
  // determinism digest) matches. A non-empty plan replaces the legacy process
  // entirely, IS part of the experiment identity, and enters the config
  // digest (the legacy `workload` fields are then ignored).
  workload::WorkloadPlan workload_plan;

  // Fault-injection timeline (empty by default). An empty plan is bit-for-bit
  // inert: no controller event is scheduled, no RNG stream shifts, and every
  // golden/digest matches a build without the fault layer. A non-empty plan
  // IS part of the experiment identity and enters the config digest.
  fault::FaultPlan fault_plan;

  // Observability gates (all off by default: hot paths then cost one
  // predicted branch). Enabling any stream cannot change results — telemetry
  // records only and is excluded from the config digest for that reason.
  // Entry points typically seed this from obs::TelemetryConfig::FromEnv().
  obs::TelemetryConfig telemetry;

  // First simulated block gets this number + 1 (the paper's range starts at
  // 7,479,573).
  std::uint64_t genesis_number = 7'479'573;

  // Structural validation of everything a run would otherwise only trip over
  // mid-simulation: probabilities outside [0, 1] (they flow straight into
  // Rng::NextBool), negative rates/means, and malformed workload/fault
  // plans. Returns an empty string when well-formed, else a description of
  // the first violation. Experiment::Build() rejects invalid configs.
  std::string Validate() const;
};

namespace presets {

// The §II deployment: four vantages (NA, EA, WE, CE) with >100 peers each,
// the Fig 3 pool roster, Geth-default plain nodes.
ExperimentConfig PaperStudy();

// A scaled-down variant for tests and fast benches: `nodes` plain nodes,
// same four vantages with proportionate peer counts.
ExperimentConfig SmallStudy(std::size_t nodes);

// The Table II subsidiary measurement: one WE vantage at Geth's default 25
// peers (May 2–9 in the paper).
ExperimentConfig DefaultPeersStudy();

}  // namespace presets

}  // namespace ethsim::core
