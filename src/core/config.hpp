// Experiment configuration: everything §II describes — the overlay
// population, the four vantage points, the pool roster, the transaction
// workload — in one value type. A run is a pure function of (config, seed).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "eth/node.hpp"
#include "fault/plan.hpp"
#include "miner/mining.hpp"
#include "miner/pool.hpp"
#include "net/geo.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"

namespace ethsim::core {

struct VantageSpec {
  std::string name;       // "NA", "EA", ...
  net::Region region = net::Region::WesternEurope;
  // How many peers the measurement node dials. The paper's main vantages ran
  // "unlimited" (>100 connected at all times); the Table II subsidiary run
  // used Geth's default 25.
  std::size_t connect_peers = 100;
};

struct TxWorkloadParams {
  // Aggregate submission rate across the network. Mainnet ran ~8.2 tx/s in
  // the study window; benches scale this down with the node count.
  double rate_per_sec = 2.0;
  // Distinct sender accounts (nonce streams).
  std::size_t accounts = 400;
  // Probability that a submission is a burst: the same sender immediately
  // issues the next nonce too, through a *different* node (multi-frontend
  // wallets/exchanges). Bursts are what make out-of-order arrivals possible.
  double burst_prob = 0.30;
  // Within a burst, probability that the *lower* nonce is the delayed one —
  // a stuck/slow frontend releases it seconds after the follow-up already
  // propagated. These inversions create the out-of-order commit penalty the
  // paper measures (Fig 5: OoO p90 325 s vs in-order 292 s): the higher
  // nonce sits queued in every pool until its predecessor shows up.
  double inversion_prob = 0.20;
  double inversion_delay_mean_s = 12.0;
  // Mean calldata size (exponential); 0 disables payloads.
  double payload_mean_bytes = 120.0;
};

struct ExperimentConfig {
  std::uint64_t seed = 42;
  Duration duration = Duration::Hours(1);

  // Plain (non-gateway, non-observer) overlay nodes and their placement.
  std::size_t peer_nodes = 200;
  std::array<double, net::kRegionCount> node_region_weights{
      0.20, 0.02, 0.19, 0.14, 0.08, 0.27, 0.06, 0.04};
  // Out-dials per plain node (Geth dials ~max_peers/3 and accepts the rest).
  std::size_t dials_per_node = 8;
  // Plain nodes get a lognormal validation-speed factor exp(N(mu, sigma)):
  // commodity hardware imports blocks several times slower than the
  // provisioned gateways/vantages. Median = e^mu.
  double plain_validation_mu = 1.4;
  double plain_validation_sigma = 1.0;

  eth::NodeConfig node_config;      // plain nodes (Geth default: 25 peers)
  eth::NodeConfig observer_config;  // vantage nodes (effectively unlimited)
  // Pool gateways run deliberately well-connected nodes (high maxpeers,
  // aggressive dialing) — that density is what lets a pool's region dominate
  // first observations (Figs 2-3).
  eth::NodeConfig gateway_config;
  std::size_t gateway_dials = 25;

  net::NetworkParams net_params;

  std::vector<VantageSpec> vantages;
  // Scale correction: in a 15k-node network a 25-peer client almost never
  // peers directly with a pool gateway (~0.3% of nodes); in our hundreds-
  // sized world gateways are ~10% of nodes. When set, observers dial only
  // plain nodes, restoring the realistic peer mix (used by the Table II
  // redundancy study, where peer identity drives the statistic).
  bool observers_avoid_gateways = false;

  miner::MiningParams mining;
  std::vector<miner::PoolSpec> pools;

  TxWorkloadParams workload;

  // Fault-injection timeline (empty by default). An empty plan is bit-for-bit
  // inert: no controller event is scheduled, no RNG stream shifts, and every
  // golden/digest matches a build without the fault layer. A non-empty plan
  // IS part of the experiment identity and enters the config digest.
  fault::FaultPlan fault_plan;

  // Observability gates (all off by default: hot paths then cost one
  // predicted branch). Enabling any stream cannot change results — telemetry
  // records only and is excluded from the config digest for that reason.
  // Entry points typically seed this from obs::TelemetryConfig::FromEnv().
  obs::TelemetryConfig telemetry;

  // First simulated block gets this number + 1 (the paper's range starts at
  // 7,479,573).
  std::uint64_t genesis_number = 7'479'573;
};

namespace presets {

// The §II deployment: four vantages (NA, EA, WE, CE) with >100 peers each,
// the Fig 3 pool roster, Geth-default plain nodes.
ExperimentConfig PaperStudy();

// A scaled-down variant for tests and fast benches: `nodes` plain nodes,
// same four vantages with proportionate peer counts.
ExperimentConfig SmallStudy(std::size_t nodes);

// The Table II subsidiary measurement: one WE vantage at Geth's default 25
// peers (May 2–9 in the paper).
ExperimentConfig DefaultPeersStudy();

}  // namespace presets

}  // namespace ethsim::core
