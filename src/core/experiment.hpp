// The experiment runner: builds the overlay (gateways, plain nodes, vantage
// observers), wires the topology through Kademlia lookups, starts the PoW
// race and the transaction workload, runs the clock, and hands the observer
// logs + mint catalog to the analysis pipeline.
#pragma once

#include <memory>
#include <vector>

#include "chain/block_arena.hpp"
#include "core/config.hpp"
#include "eth/node.hpp"
#include "fault/controller.hpp"
#include "measure/observer.hpp"
#include "miner/mining.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace ethsim::core {

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  // Builds and runs the full study once. Subsequent calls are no-ops.
  void Run();

  const ExperimentConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }

  const std::vector<std::unique_ptr<measure::Observer>>& observers() const {
    return observers_;
  }
  const miner::MiningCoordinator& coordinator() const { return *coordinator_; }
  const std::vector<miner::MintRecord>& minted() const {
    return coordinator_->minted();
  }
  const workload::WorkloadGenerator& workload() const { return *workload_; }
  // A converged full node's view of the chain at the end of the run.
  const chain::BlockTree& reference_tree() const {
    return coordinator_->reference_tree();
  }
  const std::vector<std::unique_ptr<eth::EthNode>>& nodes() const {
    return nodes_;
  }
  chain::BlockPtr genesis() const { return genesis_; }
  const net::Network& network() const { return *net_; }

  // The run's telemetry facade; null when config().telemetry has every
  // stream disabled (the normal fast path).
  obs::Telemetry* telemetry() { return telemetry_.get(); }
  const obs::Telemetry* telemetry() const { return telemetry_.get(); }

  // The fault controller; null when config().fault_plan is empty (the
  // fault-free fast path — nothing is constructed, nothing scheduled).
  const fault::FaultController* fault() const { return fault_.get(); }

 private:
  void Build();
  void BuildTopology(Rng rng);
  // State-sampling flight recorder glue (ETHSIM_SAMPLE). The sampler itself
  // lives in obs and cannot schedule events (obs never includes sim), so the
  // experiment registers the probes and drives the cadence with a
  // self-rescheduling sim event. Neither runs when the gate is off.
  void RegisterSamplerProbes();
  void ScheduleSamplerTick(obs::StateSampler* sampler, TimePoint end);

  ExperimentConfig config_;
  sim::Simulator sim_;
  // Constructed before any component so attach calls can hand out stable
  // instrument pointers; destroyed after them (declaration order).
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<net::Network> net_;
  // Owns every block body of the run (genesis + everything minted). Declared
  // before the node/miner/observer layers so the handles they hold stay
  // valid throughout teardown.
  chain::BlockArena arena_;
  chain::BlockPtr genesis_ = nullptr;
  // All full nodes: [gateways..., plain..., observers...]. Gateways first so
  // pool p's gateways are contiguous and discoverable by index.
  std::vector<std::unique_ptr<eth::EthNode>> nodes_;
  std::vector<std::unique_ptr<measure::Observer>> observers_;
  std::unique_ptr<miner::MiningCoordinator> coordinator_;
  std::unique_ptr<workload::WorkloadGenerator> workload_;
  std::unique_ptr<fault::FaultController> fault_;
  bool ran_ = false;
  bool built_ = false;
};

}  // namespace ethsim::core
