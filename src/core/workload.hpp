// Transaction workload: Poisson submissions from a population of accounts,
// each holding a monotonically increasing nonce. Bursts submit consecutive
// nonces through different frontend nodes within milliseconds — the realistic
// source of the out-of-order arrivals the paper quantifies (§III-C2).
#pragma once

#include <cstdint>
#include <vector>

#include "chain/transaction.hpp"
#include "common/random.hpp"
#include "common/time.hpp"
#include "core/config.hpp"
#include "eth/node.hpp"
#include "sim/simulator.hpp"

namespace ethsim::core {

struct SubmittedTx {
  Hash32 hash;
  Address sender;
  std::uint64_t nonce = 0;
  TimePoint submitted_at;
  bool part_of_burst = false;
};

class TxWorkload {
 public:
  TxWorkload(sim::Simulator& simulator, Rng rng, TxWorkloadParams params,
             std::vector<eth::EthNode*> frontends);

  void Start();

  const std::vector<SubmittedTx>& submitted() const { return submitted_; }
  std::uint64_t total_submitted() const { return submitted_.size(); }

 private:
  void ScheduleNext();
  void SubmitOne();
  chain::Transaction BuildTx(std::size_t account);

  sim::Simulator& sim_;
  Rng rng_;
  TxWorkloadParams params_;
  std::vector<eth::EthNode*> frontends_;
  std::vector<std::uint64_t> next_nonce_;
  std::vector<Address> account_addr_;
  std::vector<SubmittedTx> submitted_;
};

}  // namespace ethsim::core
