// devp2p node identities: 256-bit random ids with the Kademlia XOR metric.
// Neighbor relationships in Ethereum derive from these ids and are therefore
// independent of geography — the starting point of the paper's §III-B
// argument (any geographic bias must come from miners, not the overlay).
#pragma once

#include <cstdint>

#include "common/random.hpp"
#include "common/types.hpp"

namespace ethsim::p2p {

using NodeId = Hash32;

// Uniformly random node id.
NodeId RandomNodeId(Rng& rng);

// XOR distance (big-endian lexicographic on the xor bytes).
NodeId XorDistance(const NodeId& a, const NodeId& b);

// Index of the highest set bit of XorDistance(a,b): 0..255, or -1 when
// a == b. Bucket i holds nodes at log-distance i.
int LogDistance(const NodeId& a, const NodeId& b);

// true if XorDistance(target, a) < XorDistance(target, b).
bool CloserTo(const NodeId& target, const NodeId& a, const NodeId& b);

}  // namespace ethsim::p2p
