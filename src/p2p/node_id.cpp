#include "p2p/node_id.hpp"

#include <bit>

namespace ethsim::p2p {

NodeId RandomNodeId(Rng& rng) {
  NodeId id;
  for (std::size_t i = 0; i < 32; i += 8) {
    const std::uint64_t word = rng.Next();
    for (std::size_t j = 0; j < 8; ++j)
      id.bytes[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
  }
  return id;
}

NodeId XorDistance(const NodeId& a, const NodeId& b) {
  NodeId d;
  for (std::size_t i = 0; i < 32; ++i) d.bytes[i] = a.bytes[i] ^ b.bytes[i];
  return d;
}

int LogDistance(const NodeId& a, const NodeId& b) {
  for (std::size_t i = 0; i < 32; ++i) {
    const std::uint8_t x = static_cast<std::uint8_t>(a.bytes[i] ^ b.bytes[i]);
    if (x != 0) {
      const int leading = std::countl_zero(x);  // within the byte
      return static_cast<int>((31 - i) * 8 + (7 - static_cast<std::size_t>(leading)));
    }
  }
  return -1;
}

bool CloserTo(const NodeId& target, const NodeId& a, const NodeId& b) {
  return XorDistance(target, a) < XorDistance(target, b);
}

}  // namespace ethsim::p2p
