// Kademlia routing table (discv4 flavor): 256 k-buckets of capacity 16,
// bucket i holding peers at XOR log-distance i from the local id. Used to
// build the overlay topology the way real Geth does — iterative FindNode
// lookups against bootstrap nodes — which yields geography-blind, close-to-
// random neighbor sets.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "p2p/node_id.hpp"

namespace ethsim::p2p {

inline constexpr std::size_t kBucketSize = 16;  // discv4's k
inline constexpr std::size_t kBucketCount = 256;

class RoutingTable {
 public:
  explicit RoutingTable(NodeId self) : self_(self) {}

  const NodeId& self() const { return self_; }

  // Adds a node. Returns false when it is the local id, already present, or
  // its bucket is full (discv4 would ping-evict; we keep the incumbent).
  bool Add(const NodeId& node);

  bool Contains(const NodeId& node) const;
  std::size_t size() const { return size_; }

  // The `count` table entries closest to `target` by XOR distance.
  std::vector<NodeId> Closest(const NodeId& target, std::size_t count) const;

  // All entries (bucket order). Mostly for tests/inspection.
  std::vector<NodeId> Entries() const;

 private:
  NodeId self_;
  std::vector<NodeId> buckets_[kBucketCount];
  std::size_t size_ = 0;
};

// Iterative lookup driver used at topology-build time. `query` plays the
// role of a FindNode RPC: given (node, target) it returns that node's
// closest entries to the target. Returns the closest `k` ids found.
std::vector<NodeId> IterativeFindNode(
    const RoutingTable& local, const NodeId& target, std::size_t k,
    const std::function<std::vector<NodeId>(const NodeId&, const NodeId&)>& query,
    int max_rounds = 8);

}  // namespace ethsim::p2p
