#include "p2p/kademlia.hpp"

#include <algorithm>
#include <functional>
#include <unordered_set>

namespace ethsim::p2p {

bool RoutingTable::Add(const NodeId& node) {
  const int dist = LogDistance(self_, node);
  if (dist < 0) return false;  // self
  auto& bucket = buckets_[static_cast<std::size_t>(dist)];
  if (std::find(bucket.begin(), bucket.end(), node) != bucket.end()) return false;
  if (bucket.size() >= kBucketSize) return false;
  bucket.push_back(node);
  ++size_;
  return true;
}

bool RoutingTable::Contains(const NodeId& node) const {
  const int dist = LogDistance(self_, node);
  if (dist < 0) return false;
  const auto& bucket = buckets_[static_cast<std::size_t>(dist)];
  return std::find(bucket.begin(), bucket.end(), node) != bucket.end();
}

std::vector<NodeId> RoutingTable::Closest(const NodeId& target,
                                          std::size_t count) const {
  std::vector<NodeId> all = Entries();
  std::sort(all.begin(), all.end(), [&](const NodeId& a, const NodeId& b) {
    return CloserTo(target, a, b);
  });
  if (all.size() > count) all.resize(count);
  return all;
}

std::vector<NodeId> RoutingTable::Entries() const {
  std::vector<NodeId> out;
  out.reserve(size_);
  for (const auto& bucket : buckets_)
    out.insert(out.end(), bucket.begin(), bucket.end());
  return out;
}

std::vector<NodeId> IterativeFindNode(
    const RoutingTable& local, const NodeId& target, std::size_t k,
    const std::function<std::vector<NodeId>(const NodeId&, const NodeId&)>& query,
    int max_rounds) {
  auto closer = [&](const NodeId& a, const NodeId& b) {
    return CloserTo(target, a, b);
  };

  std::vector<NodeId> shortlist = local.Closest(target, k);
  std::unordered_set<NodeId> seen(shortlist.begin(), shortlist.end());
  std::unordered_set<NodeId> queried;

  for (int round = 0; round < max_rounds; ++round) {
    // Query the alpha(=3) closest not-yet-queried nodes.
    std::vector<NodeId> pending;
    for (const NodeId& n : shortlist) {
      if (!queried.contains(n)) pending.push_back(n);
      if (pending.size() == 3) break;
    }
    if (pending.empty()) break;

    bool improved = false;
    for (const NodeId& n : pending) {
      queried.insert(n);
      for (const NodeId& found : query(n, target)) {
        if (found == local.self()) continue;
        if (seen.insert(found).second) {
          shortlist.push_back(found);
          improved = true;
        }
      }
    }
    std::sort(shortlist.begin(), shortlist.end(), closer);
    if (shortlist.size() > k) shortlist.resize(k);
    if (!improved) break;
  }
  return shortlist;
}

}  // namespace ethsim::p2p
