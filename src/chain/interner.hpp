// Dense interning of 32-byte chain identities. Every block hash a component
// touches is keccak output, so its bytes are already uniformly distributed —
// probing an open-addressing table straight off the first word is both
// cheaper than std::unordered_map's bucket machinery and free of per-node
// allocations. Interned ids are dense uint32s assigned in first-seen order,
// which is what lets BlockTree store its nodes in a flat arena and replace
// hash-keyed maps with vector indexing (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.hpp"

namespace ethsim::chain {

// Transparent identity-hash adaptor for the containers that must stay
// hash-keyed (per-node seen/importing/requested sets, network-level caches).
// Identical distribution contract as std::hash<FixedBytes<N>> but usable in
// heterogeneous lookups and explicit about the no-re-hash guarantee.
struct Hash32IdentityHash {
  using is_transparent = void;
  std::size_t operator()(const Hash32& h) const noexcept {
    std::uint64_t v;
    std::memcpy(&v, h.bytes.data(), sizeof(v));
    return static_cast<std::size_t>(v);
  }
};

class HashInterner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kNoId = 0xFFFFFFFFu;

  HashInterner() { Rehash(kInitialSlots); }

  // Returns the dense id for `hash`, assigning the next id on first sight.
  Id Intern(const Hash32& hash) {
    std::size_t probe = Slot(hash);
    while (true) {
      const Id id = slots_[probe];
      if (id == kNoId) break;
      if (hashes_[id] == hash) return id;
      probe = (probe + 1) & mask_;
    }
    const Id id = static_cast<Id>(hashes_.size());
    hashes_.push_back(hash);
    slots_[probe] = id;
    if (hashes_.size() * 4 >= slots_.size() * 3) Grow();  // 3/4 load factor
    return id;
  }

  // kNoId when the hash was never interned.
  Id Find(const Hash32& hash) const {
    std::size_t probe = Slot(hash);
    while (true) {
      const Id id = slots_[probe];
      if (id == kNoId) return kNoId;
      if (hashes_[id] == hash) return id;
      probe = (probe + 1) & mask_;
    }
  }

  bool Contains(const Hash32& hash) const { return Find(hash) != kNoId; }
  const Hash32& Resolve(Id id) const { return hashes_[id]; }
  std::size_t size() const { return hashes_.size(); }
  // Open-addressing table capacity; size()/slot_count() is the load factor
  // (kept under 3/4 by Grow) that the state sampler tracks over a run.
  std::size_t slot_count() const { return slots_.size(); }

  void Reserve(std::size_t ids) {
    hashes_.reserve(ids);
    std::size_t want = kInitialSlots;
    while (ids * 4 >= want * 3) want <<= 1;
    if (want > slots_.size()) Rehash(want);
  }

 private:
  static constexpr std::size_t kInitialSlots = 64;

  std::size_t Slot(const Hash32& hash) const {
    std::uint64_t v;
    std::memcpy(&v, hash.bytes.data(), sizeof(v));
    return static_cast<std::size_t>(v) & mask_;
  }

  void Grow() { Rehash(slots_.size() * 2); }

  void Rehash(std::size_t new_slots) {
    slots_.assign(new_slots, kNoId);
    mask_ = new_slots - 1;
    for (Id id = 0; id < hashes_.size(); ++id) {
      std::size_t probe = Slot(hashes_[id]);
      while (slots_[probe] != kNoId) probe = (probe + 1) & mask_;
      slots_[probe] = id;
    }
  }

  std::vector<Id> slots_;     // open-addressing table; kNoId = empty
  std::vector<Hash32> hashes_;  // id -> hash, dense first-seen order
  std::size_t mask_ = 0;
};

}  // namespace ethsim::chain
