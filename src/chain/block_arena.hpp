// Shared storage for immutable block bodies. The simulator keeps exactly one
// copy of every block ever assembled; nodes, gossip closures, mint records
// and analysis all refer to it through an 8-byte BlockPtr. Before the arena,
// that sharing ran on shared_ptr<const Block> — every relay hop, scheduled
// callback and tree node bumped an atomic refcount even though no block is
// ever freed before the world it belongs to. Adopt() pins a block at a
// stable address for the arena's lifetime (a deque never moves elements), so
// the refcount traffic disappears and a BlockPtr is a plain pointer.
//
// Lifetime contract: the arena outlives every component holding BlockPtrs
// into it — core::Experiment declares it before the node/miner layers, tests
// and benches declare it first in their scopes.
#pragma once

#include <deque>
#include <utility>

#include "chain/block.hpp"

namespace ethsim::chain {

class BlockArena {
 public:
  BlockArena() = default;
  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;

  // Takes ownership of a fully assembled block. The caller establishes the
  // block's hash identity first — by Seal() or by assigning a persisted /
  // synthetic hash; Adopt never mutates what it stores (tests legitimately
  // adopt blocks with an all-zero synthetic hash).
  BlockPtr Adopt(Block&& block) {
    blocks_.push_back(std::move(block));
    return &blocks_.back();
  }

  // Copy-adopt convenience for sibling/fork variants built from a template.
  BlockPtr Adopt(const Block& block) { return Adopt(Block{block}); }

  std::size_t size() const { return blocks_.size(); }

 private:
  std::deque<Block> blocks_;
};

}  // namespace ethsim::chain
