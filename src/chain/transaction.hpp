// Ethereum-style transactions. Each transaction carries a per-sender
// monotonically increasing nonce — the mechanism behind the paper's
// out-of-order commit analysis (§III-C2) — and is identified by
// keccak256(rlp(tx)) exactly as in the real protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rlp.hpp"
#include "common/types.hpp"

namespace ethsim::chain {

struct Transaction {
  Address sender;
  std::uint64_t nonce = 0;
  Address to;
  std::uint64_t value = 0;      // in gwei (simulation currency unit)
  std::uint64_t gas_limit = 21'000;
  std::uint64_t gas_price = 1;  // gwei per gas
  std::uint32_t payload_bytes = 0;  // calldata size; affects wire size

  Hash32 hash;  // cached identity, computed by Seal()
  // Cached wire size, computed by Seal() (0 = not sealed yet). Not part of
  // the RLP identity; caching it keeps the per-relay byte accounting free.
  std::uint32_t wire_size = 0;

  // Computes and caches the RLP hash identity and wire size. Must be called
  // after any field change; all factory paths do this.
  void Seal();

  // Approximate wire size of the RLP-encoded transaction.
  std::size_t EncodedSize() const {
    return wire_size != 0 ? wire_size : 110 + payload_bytes;
  }
};

// RLP-encodes all identity-relevant fields (everything except the cache).
rlp::Bytes EncodeTransaction(const Transaction& tx);

// Builds a sealed transaction.
Transaction MakeTransaction(Address sender, std::uint64_t nonce, Address to,
                            std::uint64_t value, std::uint64_t gas_price,
                            std::uint32_t payload_bytes = 0);

}  // namespace ethsim::chain
