// Structural block validation — the consensus checks a client runs before
// importing a block (yellow-paper header/body well-formedness; state
// execution is out of scope for the simulator). Full nodes reject blocks
// failing any of these, so a byzantine peer cannot corrupt a chain view.
#pragma once

#include <string_view>

#include "chain/block.hpp"
#include "chain/difficulty.hpp"

namespace ethsim::chain {

enum class ValidationError {
  kNone = 0,
  kBadSeal,        // cached hash doesn't match the header
  kBadNumber,      // number != parent.number + 1
  kBadTimestamp,   // timestamp <= parent.timestamp
  kBadTxRoot,      // header commitment doesn't match the body
  kBadUncleRoot,
  kBadGasUsed,     // header gas_used doesn't match the transactions
  kGasOverLimit,   // gas_used > gas_limit
  kTooManyUncles,  // > 2
  kDuplicateUncle,
  kBadUncleRange,  // uncle height outside [number-6, number-1]
  kSelfUncle,      // block lists itself/its parent as an uncle
  kNonceOrder,     // a sender's nonces inside the block are not increasing
  kBadDifficulty,  // difficulty doesn't match the EIP-100 formula
};

std::string_view ValidationErrorName(ValidationError error);

// Validates `block` against its parent header. Difficulty is checked only
// when `difficulty_params` is non-null (some tests construct synthetic
// difficulty schedules).
ValidationError ValidateBlock(const Block& block, const BlockHeader& parent,
                              const DifficultyParams* difficulty_params = nullptr);

}  // namespace ethsim::chain
