// Transaction pool with Geth's pending/queued split: transactions are
// executable ("pending") only when every lower nonce from the same sender is
// known; higher-nonce arrivals wait in "queued". This is the mechanism that
// turns out-of-order propagation into extra commit latency (§III-C2).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/transaction.hpp"

namespace ethsim::chain {

class TxPool {
 public:
  enum class AddOutcome {
    kPending,   // executable now
    kQueued,    // future nonce; waits for its predecessors
    kKnown,     // duplicate hash
    kStale,     // nonce below the account's current nonce
    kReplaced,  // same (sender, nonce) already pooled; kept the higher price
    kRejected,  // same (sender, nonce) at equal/lower price
  };

  AddOutcome Add(const Transaction& tx);

  // Chain-state nonce updates. Raising an account nonce drops now-stale
  // transactions and promotes newly executable ones.
  void SetAccountNonce(const Address& account, std::uint64_t nonce);
  std::uint64_t AccountNonce(const Address& account) const;

  // Lowers an account nonce to at most `nonce` (no-op if already lower).
  // Used on reorgs: a retired block's transactions become un-included, so
  // the pool's view of the sender nonce must rewind before re-adding them
  // (Geth achieves the same by resetting pool state to the new head).
  void RollbackAccountNonce(const Address& account, std::uint64_t nonce);

  // Marks a block's transactions as included: advances account nonces and
  // evicts them from the pool.
  void RemoveIncluded(const std::vector<Transaction>& txs);

  // Selects executable transactions for a new block: highest gas price
  // first, per-sender nonce order always respected, stopping at either
  // limit. (Geth's price-and-nonce heap.)
  std::vector<Transaction> SelectForBlock(std::uint64_t gas_limit,
                                          std::size_t max_txs) const;

  bool Contains(const Hash32& hash) const { return known_.contains(hash); }
  std::size_t pending_count() const;
  std::size_t queued_count() const;
  std::size_t size() const { return known_.size(); }

 private:
  struct Account {
    std::uint64_t next_nonce = 0;
    std::map<std::uint64_t, Transaction> txs;  // nonce -> tx

    // Number of consecutively executable txs starting at next_nonce.
    std::size_t ExecutableCount() const;
  };

  std::unordered_map<Address, Account> accounts_;
  std::unordered_set<Hash32> known_;
};

}  // namespace ethsim::chain
