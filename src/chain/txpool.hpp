// Transaction pool with Geth's pending/queued split: transactions are
// executable ("pending") only when every lower nonce from the same sender is
// known; higher-nonce arrivals wait in "queued". This is the mechanism that
// turns out-of-order propagation into extra commit latency (§III-C2).
//
// Memory layout (DESIGN.md §12): each account keeps its transactions in a
// nonce-sorted vector (accounts hold a handful of txs, so a shifted insert
// beats a std::map node allocation by a wide margin) with the length of the
// executable prefix maintained incrementally across every mutation. Accounts
// with a non-empty executable run are tracked in `heads_`, a persistent
// unsorted index with O(1) swap-erase membership — SelectForBlock heapifies
// a copy of it instead of rescanning every account, and pending/queued
// counts are running totals instead of full-pool sweeps.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/interner.hpp"
#include "chain/transaction.hpp"

namespace ethsim::chain {

class TxPool {
 public:
  enum class AddOutcome {
    kPending,   // executable now
    kQueued,    // future nonce; waits for its predecessors
    kKnown,     // duplicate hash
    kStale,     // nonce below the account's current nonce
    kReplaced,  // same (sender, nonce) already pooled; kept the higher price
    kRejected,  // same (sender, nonce) at equal/lower price
  };

  AddOutcome Add(const Transaction& tx);

  // Chain-state nonce updates. Raising an account nonce drops now-stale
  // transactions and promotes newly executable ones.
  void SetAccountNonce(const Address& account, std::uint64_t nonce);
  std::uint64_t AccountNonce(const Address& account) const;

  // Lowers an account nonce to at most `nonce` (no-op if already lower).
  // Used on reorgs: a retired block's transactions become un-included, so
  // the pool's view of the sender nonce must rewind before re-adding them
  // (Geth achieves the same by resetting pool state to the new head).
  void RollbackAccountNonce(const Address& account, std::uint64_t nonce);

  // Marks a block's transactions as included: advances account nonces and
  // evicts them from the pool.
  void RemoveIncluded(const std::vector<Transaction>& txs);

  // Selects executable transactions for a new block: highest gas price
  // first, per-sender nonce order always respected, stopping at either
  // limit. (Geth's price-and-nonce heap.)
  std::vector<Transaction> SelectForBlock(std::uint64_t gas_limit,
                                          std::size_t max_txs) const;

  bool Contains(const Hash32& hash) const { return known_.contains(hash); }
  std::size_t pending_count() const { return pending_total_; }
  std::size_t queued_count() const { return known_.size() - pending_total_; }
  std::size_t size() const { return known_.size(); }
  // Accounts with a non-empty executable run (the heads_ index) — a backlog
  // shape the state sampler records over time.
  std::size_t heads_count() const { return heads_.size(); }

  // Audits the incremental state against a from-scratch rebuild: per-account
  // nonce runs sorted and duplicate-free, cached executable-prefix lengths
  // equal to a recount, the heads_ index holding exactly the accounts with a
  // non-empty run (slot back-references consistent), the pending total
  // matching the per-account sum, and every pooled hash present in known_.
  // Returns false (after naming the violated condition on stderr) so the
  // property tests can exercise it under any build type.
  bool CheckInvariants() const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Account {
    std::uint64_t next_nonce = 0;
    std::vector<Transaction> txs;  // sorted by nonce, unique
    // Length of the executable prefix: txs[i].nonce == next_nonce + i for
    // all i < exec_count. Maintained incrementally by every mutation.
    std::uint32_t exec_count = 0;
    std::uint32_t head_slot = kNoSlot;  // index into heads_, or kNoSlot
  };

  // Recounts the executable prefix from the sorted run.
  static std::uint32_t CountExecutable(const Account& account);
  // Applies a new exec_count: fixes pending_total_ and heads_ membership.
  void SetExecCount(Account& account, std::uint32_t exec);

  std::unordered_map<Address, Account> accounts_;
  std::unordered_set<Hash32, Hash32IdentityHash, std::equal_to<>> known_;
  // Accounts with exec_count > 0; unsorted, swap-erase maintained.
  std::vector<Account*> heads_;
  std::size_t pending_total_ = 0;
};

}  // namespace ethsim::chain
