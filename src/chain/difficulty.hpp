// Difficulty adjustment (EIP-100 rule with the EIP-1234 difficulty-bomb
// delay). The paper attributes the 14.3 s → 13.3 s inter-block drop to the
// Constantinople bomb delay (§III-C1); the fork-era benches reproduce that by
// switching `bomb_delay_blocks` between the Byzantium and Constantinople
// values.
#pragma once

#include <cstdint>

namespace ethsim::chain {

struct DifficultyParams {
  // EIP-1234 (Constantinople): bomb reads the block number minus 5M.
  // Byzantium used 3M; with 2019 block heights (~7.5M) the Byzantium bomb is
  // already biting, which is exactly the pre-fork slowdown the paper cites.
  std::uint64_t bomb_delay_blocks = 5'000'000;
  std::uint64_t minimum_difficulty = 131'072;
};

// Computes the difficulty of a child block per the EIP-100 formula:
//   parent_diff + parent_diff/2048 * max((2 if parent_has_uncles else 1)
//                                        - (child_ts - parent_ts)/9, -99)
//   + 2^(fake_number/100000 - 2)
std::uint64_t NextDifficulty(std::uint64_t parent_difficulty,
                             std::uint64_t parent_timestamp,
                             bool parent_has_uncles,
                             std::uint64_t child_timestamp,
                             std::uint64_t child_number,
                             const DifficultyParams& params = {});

}  // namespace ethsim::chain
