#include "chain/block.hpp"

#include "common/keccak.hpp"

namespace ethsim::chain {

rlp::Bytes EncodeHeader(const BlockHeader& h) {
  rlp::Encoder e;
  e.BeginList();
  e.WriteFixed(h.parent_hash);
  e.WriteUint(h.number);
  e.WriteUint(h.difficulty);
  e.WriteUint(h.timestamp);
  e.WriteFixed(h.miner);
  e.WriteFixed(h.tx_root);
  e.WriteFixed(h.uncle_root);
  e.WriteUint(h.gas_limit);
  e.WriteUint(h.gas_used);
  e.WriteUint(h.mix_seed);
  e.EndList();
  return e.Take();
}

Hash32 BlockHeader::Hash() const {
  const rlp::Bytes encoded = EncodeHeader(*this);
  return Keccak256Of(std::span<const std::uint8_t>(encoded.data(), encoded.size()));
}

Hash32 ComputeTxRoot(const std::vector<Transaction>& txs) {
  Keccak256 h;
  for (const auto& tx : txs)
    h.Update(std::span<const std::uint8_t>(tx.hash.bytes.data(), 32));
  return h.Final();
}

Hash32 ComputeUncleRoot(const std::vector<BlockHeader>& uncles) {
  Keccak256 h;
  for (const auto& u : uncles) {
    const Hash32 uh = u.Hash();
    h.Update(std::span<const std::uint8_t>(uh.bytes.data(), 32));
  }
  return h.Final();
}

void Block::Seal() {
  header.tx_root = ComputeTxRoot(transactions);
  header.uncle_root = ComputeUncleRoot(uncles);
  std::uint64_t gas = 0;
  for (const auto& tx : transactions) gas += tx.gas_limit;
  header.gas_used = gas;
  hash = header.Hash();
  encoded_size = ComputeEncodedSize();
  integrity_memo = 0;  // content changed: drop the memoized validation verdict
}

std::size_t Block::ComputeEncodedSize() const {
  std::size_t size = kHeaderWireSize;
  for (const auto& tx : transactions) size += tx.EncodedSize();
  size += uncles.size() * kHeaderWireSize;
  return size;
}

}  // namespace ethsim::chain
