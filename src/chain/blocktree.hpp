// The block tree: every block a node has ever accepted, with total-difficulty
// fork choice (heaviest chain wins, ties broken by first-seen, as in Geth),
// canonical-chain maintenance with reorg reporting, orphan buffering, and
// Ethereum's uncle-candidate rules. Blocks are immutable and shared between
// all simulated nodes via shared_ptr — the simulator keeps one copy of each.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "common/time.hpp"

namespace ethsim::chain {

using BlockPtr = std::shared_ptr<const Block>;

class BlockTree {
 public:
  // The tree is rooted at a genesis block (number may be nonzero so runs can
  // start at paper-era heights like 7,479,573).
  explicit BlockTree(BlockPtr genesis);

  enum class AddOutcome {
    kAdded,          // accepted, head unchanged
    kAddedNewHead,   // accepted and became (part of) the canonical chain
    kDuplicate,      // already known
    kOrphaned,       // parent unknown; buffered until the parent arrives
  };

  struct AddResult {
    AddOutcome outcome = AddOutcome::kAdded;
    // Canonical-chain delta when a reorg happened (oldest first). Retired
    // blocks left the canonical chain; adopted blocks joined it.
    std::vector<BlockPtr> retired;
    std::vector<BlockPtr> adopted;
  };

  AddResult Add(BlockPtr block, TimePoint received);

  bool Contains(const Hash32& hash) const;
  BlockPtr Get(const Hash32& hash) const;  // nullptr if unknown
  TimePoint FirstSeen(const Hash32& hash) const;

  const Hash32& head_hash() const { return head_; }
  BlockPtr head() const { return Get(head_); }
  std::uint64_t head_number() const;
  std::uint64_t TotalDifficulty(const Hash32& hash) const;

  bool IsCanonical(const Hash32& hash) const;
  // Canonical hash at a height; zero hash if above head or below genesis.
  Hash32 CanonicalAt(std::uint64_t number) const;

  // Valid uncle references for a block built on `parent`: known non-ancestor
  // blocks within 6 generations whose parent is an ancestor of the new block
  // and which are not already referenced by the parent's recent ancestry.
  // Deterministic order (first-seen, then hash); at most `max_uncles`.
  // `forbid_same_miner_as_main` applies the paper's §V proposal: a block
  // whose miner already produced the main-chain block at the same height is
  // not an acceptable uncle (kills the one-miner-fork reward).
  std::vector<BlockHeader> UncleCandidates(
      const Hash32& parent, std::size_t max_uncles = 2,
      bool forbid_same_miner_as_main = false) const;

  // All known block hashes at a height (canonical and forks).
  std::vector<Hash32> HashesAtHeight(std::uint64_t number) const;

  std::size_t block_count() const { return nodes_.size(); }
  std::size_t orphan_count() const { return orphans_.size(); }
  const Hash32& genesis_hash() const { return genesis_; }
  std::uint64_t genesis_number() const { return genesis_number_; }

  // Enumeration for the analysis pipeline.
  std::vector<BlockPtr> AllBlocks() const;
  std::vector<BlockPtr> CanonicalChain() const;  // genesis..head

 private:
  struct Node {
    BlockPtr block;
    std::uint64_t total_difficulty = 0;
    TimePoint first_seen;
  };

  void Attach(BlockPtr block, TimePoint received, AddResult& result);
  void MaybeReorg(const Hash32& candidate, AddResult& result);

  std::unordered_map<Hash32, Node> nodes_;
  // parent hash -> blocks waiting for that parent.
  std::unordered_map<Hash32, std::vector<std::pair<BlockPtr, TimePoint>>> orphans_;
  std::unordered_map<std::uint64_t, std::vector<Hash32>> by_height_;
  std::unordered_map<std::uint64_t, Hash32> canonical_;
  Hash32 genesis_;
  std::uint64_t genesis_number_ = 0;
  Hash32 head_;
};

}  // namespace ethsim::chain
