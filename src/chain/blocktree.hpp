// The block tree: every block a node has ever accepted, with total-difficulty
// fork choice (heaviest chain wins, ties broken by first-seen, as in Geth),
// canonical-chain maintenance with reorg reporting, orphan buffering, and
// Ethereum's uncle-candidate rules.
//
// Memory layout (DESIGN.md §12): block hashes are interned to dense uint32
// ids and nodes live in a contiguous arena indexed by id — the hash-keyed
// unordered_maps the tree used to carry (nodes/by_height/canonical) are now
// one open-addressing probe into the interner followed by vector indexing.
// Tree shape is explicit via parent/first-child/next-sibling links, and the
// per-height and canonical indexes are id vectors keyed by height offset.
// Block bodies themselves are owned by a chain::BlockArena elsewhere; the
// tree holds borrowed BlockPtr handles.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/interner.hpp"
#include "common/time.hpp"

namespace ethsim::chain {

class BlockTree {
 public:
  using BlockId = HashInterner::Id;
  static constexpr BlockId kNoId = HashInterner::kNoId;

  // The tree is rooted at a genesis block (number may be nonzero so runs can
  // start at paper-era heights like 7,479,573).
  explicit BlockTree(BlockPtr genesis);

  enum class AddOutcome {
    kAdded,          // accepted, head unchanged
    kAddedNewHead,   // accepted and became (part of) the canonical chain
    kDuplicate,      // already known
    kOrphaned,       // parent unknown; buffered until the parent arrives
  };

  struct AddResult {
    AddOutcome outcome = AddOutcome::kAdded;
    // Canonical-chain delta when a reorg happened (oldest first). Retired
    // blocks left the canonical chain; adopted blocks joined it.
    std::vector<BlockPtr> retired;
    std::vector<BlockPtr> adopted;
    // One entry per head switch inside this Add. A single Add can cascade
    // through several reorgs (attaching a block also attaches any orphans
    // that were waiting on it, each of which may move the head again), and a
    // block adopted by one switch can be retired by the next — so the flat
    // retired/adopted lists lose the true ordering. Each step holds the
    // exclusive end indexes into those lists after its switch; consumers
    // that need the real retire/adopt interleaving (the tx-lifecycle
    // provenance recorder) replay the slices step by step. Only filled
    // after set_record_reorg_steps(true) — the vector costs an allocation
    // per Add, which the recorder-off hot path must not pay.
    struct ReorgStep {
      std::uint32_t retired_end = 0;
      std::uint32_t adopted_end = 0;
    };
    std::vector<ReorgStep> steps;
  };

  AddResult Add(BlockPtr block, TimePoint received);

  // Opt into AddResult::steps (the tx-lifecycle recorder needs the per-switch
  // interleaving; nothing else pays for it).
  void set_record_reorg_steps(bool on) { record_reorg_steps_ = on; }

  bool Contains(const Hash32& hash) const;
  BlockPtr Get(const Hash32& hash) const;  // nullptr if unknown
  TimePoint FirstSeen(const Hash32& hash) const;

  const Hash32& head_hash() const { return head_; }
  BlockPtr head() const { return nodes_[head_id_].block; }
  std::uint64_t head_number() const;
  std::uint64_t TotalDifficulty(const Hash32& hash) const;

  bool IsCanonical(const Hash32& hash) const;
  // Canonical hash at a height; zero hash if above head or below genesis.
  Hash32 CanonicalAt(std::uint64_t number) const;

  // Valid uncle references for a block built on `parent`: known non-ancestor
  // blocks within 6 generations whose parent is an ancestor of the new block
  // and which are not already referenced by the parent's recent ancestry.
  // Deterministic order (first-seen, then hash); at most `max_uncles`.
  // `forbid_same_miner_as_main` applies the paper's §V proposal: a block
  // whose miner already produced the main-chain block at the same height is
  // not an acceptable uncle (kills the one-miner-fork reward).
  std::vector<BlockHeader> UncleCandidates(
      const Hash32& parent, std::size_t max_uncles = 2,
      bool forbid_same_miner_as_main = false) const;

  // All known block hashes at a height (canonical and forks).
  std::vector<Hash32> HashesAtHeight(std::uint64_t number) const;

  std::size_t block_count() const { return attached_; }
  std::size_t orphan_count() const { return orphans_.size(); }
  // Hash-interner occupancy in permille (size * 1000 / slots), for the
  // state sampler's arena-health series. 750 is the grow threshold.
  std::size_t interner_load_permille() const {
    return interner_.slot_count() == 0
               ? 0
               : interner_.size() * 1000 / interner_.slot_count();
  }
  std::size_t interned_hashes() const { return interner_.size(); }
  const Hash32& genesis_hash() const { return genesis_; }
  std::uint64_t genesis_number() const { return genesis_number_; }

  // Enumeration for the analysis pipeline (attach order).
  std::vector<BlockPtr> AllBlocks() const;
  std::vector<BlockPtr> CanonicalChain() const;  // genesis..head

  // Structural audit: arena links form a tree rooted at genesis (acyclic,
  // parent/child mutually consistent), total difficulty and heights
  // telescope along parent links, the canonical index walks
  // parent-to-parent from head down to genesis, and every height-bucket
  // entry is attached. Returns false (after naming the violated condition
  // on stderr) instead of asserting so the property tests can exercise it
  // under any build type.
  bool CheckInvariants() const;

 private:
  struct Node {
    BlockPtr block = nullptr;  // nullptr: id reserved (orphan parent ref)
    std::uint64_t total_difficulty = 0;
    TimePoint first_seen;
    BlockId parent = kNoId;
    BlockId first_child = kNoId;
    BlockId next_sibling = kNoId;
  };

  // Interns `hash`, growing the node arena so ids always index into it.
  BlockId InternNode(const Hash32& hash);
  // kNoId when unknown OR known only as an orphan's missing parent.
  BlockId FindAttached(const Hash32& hash) const;

  std::vector<BlockId>& HeightBucket(std::uint64_t number);
  BlockId& CanonicalSlot(std::uint64_t number);

  void Attach(BlockPtr block, TimePoint received, AddResult& result);
  void MaybeReorg(BlockId candidate, AddResult& result);

  HashInterner interner_;
  std::vector<Node> nodes_;  // indexed by interned id
  // interned parent id -> blocks waiting for that parent.
  std::unordered_map<BlockId, std::vector<std::pair<BlockPtr, TimePoint>>>
      orphans_;
  // Indexed by number - genesis_number_.
  std::vector<std::vector<BlockId>> by_height_;
  std::vector<BlockId> canonical_;  // kNoId = no canonical block (retired)
  std::size_t attached_ = 0;        // nodes with a block (excludes reserved)
  Hash32 genesis_;
  std::uint64_t genesis_number_ = 0;
  Hash32 head_;
  BlockId genesis_id_ = kNoId;
  BlockId head_id_ = kNoId;
  bool record_reorg_steps_ = false;
};

}  // namespace ethsim::chain
