#include "chain/transaction.hpp"

#include "common/keccak.hpp"

namespace ethsim::chain {

rlp::Bytes EncodeTransaction(const Transaction& tx) {
  rlp::Encoder e;
  e.BeginList();
  e.WriteFixed(tx.sender);
  e.WriteUint(tx.nonce);
  e.WriteFixed(tx.to);
  e.WriteUint(tx.value);
  e.WriteUint(tx.gas_limit);
  e.WriteUint(tx.gas_price);
  e.WriteUint(tx.payload_bytes);
  e.EndList();
  return e.Take();
}

void Transaction::Seal() {
  const rlp::Bytes encoded = EncodeTransaction(*this);
  hash = Keccak256Of(std::span<const std::uint8_t>(encoded.data(), encoded.size()));
  // RLP framing of the fixed fields is ~110 bytes (sender 21 + to 21 +
  // scalars); calldata rides on top. Close to mainnet's ~110-byte simple
  // transfer. Cached so the per-relay byte accounting never recomputes it.
  wire_size = 110 + payload_bytes;
}

Transaction MakeTransaction(Address sender, std::uint64_t nonce, Address to,
                            std::uint64_t value, std::uint64_t gas_price,
                            std::uint32_t payload_bytes) {
  Transaction tx;
  tx.sender = sender;
  tx.nonce = nonce;
  tx.to = to;
  tx.value = value;
  tx.gas_price = gas_price;
  tx.payload_bytes = payload_bytes;
  tx.gas_limit = 21'000 + static_cast<std::uint64_t>(payload_bytes) * 16;
  tx.Seal();
  return tx;
}

}  // namespace ethsim::chain
