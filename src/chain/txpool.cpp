#include "chain/txpool.hpp"

#include <algorithm>
#include <queue>

namespace ethsim::chain {

std::size_t TxPool::Account::ExecutableCount() const {
  std::size_t n = 0;
  auto it = txs.find(next_nonce);
  while (it != txs.end() && it->first == next_nonce + n) {
    ++n;
    ++it;
  }
  return n;
}

TxPool::AddOutcome TxPool::Add(const Transaction& tx) {
  if (known_.contains(tx.hash)) return AddOutcome::kKnown;

  Account& account = accounts_[tx.sender];
  if (tx.nonce < account.next_nonce) return AddOutcome::kStale;

  const auto it = account.txs.find(tx.nonce);
  if (it != account.txs.end()) {
    // Same-slot replacement requires a strictly better price (Geth demands a
    // 10% bump; strict improvement is the behaviour that matters here).
    if (tx.gas_price <= it->second.gas_price) return AddOutcome::kRejected;
    known_.erase(it->second.hash);
    it->second = tx;
    known_.insert(tx.hash);
    return AddOutcome::kReplaced;
  }

  account.txs.emplace(tx.nonce, tx);
  known_.insert(tx.hash);
  return tx.nonce < account.next_nonce + account.ExecutableCount()
             ? AddOutcome::kPending
             : AddOutcome::kQueued;
}

void TxPool::SetAccountNonce(const Address& account_addr, std::uint64_t nonce) {
  Account& account = accounts_[account_addr];
  if (nonce <= account.next_nonce) {
    account.next_nonce = std::max(account.next_nonce, nonce);
    return;
  }
  account.next_nonce = nonce;
  // Drop transactions made stale by the nonce jump.
  while (!account.txs.empty() && account.txs.begin()->first < nonce) {
    known_.erase(account.txs.begin()->second.hash);
    account.txs.erase(account.txs.begin());
  }
}

void TxPool::RollbackAccountNonce(const Address& account_addr,
                                  std::uint64_t nonce) {
  Account& account = accounts_[account_addr];
  if (nonce < account.next_nonce) account.next_nonce = nonce;
}

std::uint64_t TxPool::AccountNonce(const Address& account) const {
  const auto it = accounts_.find(account);
  return it == accounts_.end() ? 0 : it->second.next_nonce;
}

void TxPool::RemoveIncluded(const std::vector<Transaction>& txs) {
  for (const auto& tx : txs) {
    known_.erase(tx.hash);
    Account& account = accounts_[tx.sender];
    account.txs.erase(tx.nonce);
    if (tx.nonce >= account.next_nonce) SetAccountNonce(tx.sender, tx.nonce + 1);
  }
}

std::vector<Transaction> TxPool::SelectForBlock(std::uint64_t gas_limit,
                                                std::size_t max_txs) const {
  // Price-and-nonce selection: a heap of per-account cursors keyed by the
  // gas price of the account's lowest executable nonce.
  struct Cursor {
    const Account* account;
    std::map<std::uint64_t, Transaction>::const_iterator it;
    std::size_t remaining;  // executable txs left for this account
  };
  auto price_less = [](const Cursor& a, const Cursor& b) {
    if (a.it->second.gas_price != b.it->second.gas_price)
      return a.it->second.gas_price < b.it->second.gas_price;
    // Deterministic tie-break on tx hash.
    return a.it->second.hash < b.it->second.hash;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(price_less)> heap{
      price_less};

  for (const auto& [addr, account] : accounts_) {
    const std::size_t executable = account.ExecutableCount();
    if (executable == 0) continue;
    heap.push({&account, account.txs.find(account.next_nonce), executable});
  }

  std::vector<Transaction> out;
  std::uint64_t gas_used = 0;
  while (!heap.empty() && out.size() < max_txs) {
    Cursor cur = heap.top();
    heap.pop();
    const Transaction& tx = cur.it->second;
    if (gas_used + tx.gas_limit > gas_limit) continue;  // account blocked on gas
    gas_used += tx.gas_limit;
    out.push_back(tx);
    if (cur.remaining > 1) heap.push({cur.account, std::next(cur.it),
                                      cur.remaining - 1});
  }
  return out;
}

std::size_t TxPool::pending_count() const {
  std::size_t n = 0;
  for (const auto& [addr, account] : accounts_) n += account.ExecutableCount();
  return n;
}

std::size_t TxPool::queued_count() const { return known_.size() - pending_count(); }

}  // namespace ethsim::chain
