#include "chain/txpool.hpp"

#include <algorithm>
#include <cstdio>

namespace ethsim::chain {

namespace {

// First position in a nonce-sorted run whose nonce is >= `nonce`.
std::vector<Transaction>::iterator NonceSlot(std::vector<Transaction>& txs,
                                             std::uint64_t nonce) {
  return std::lower_bound(
      txs.begin(), txs.end(), nonce,
      [](const Transaction& t, std::uint64_t n) { return t.nonce < n; });
}

}  // namespace

std::uint32_t TxPool::CountExecutable(const Account& account) {
  auto it = std::lower_bound(
      account.txs.begin(), account.txs.end(), account.next_nonce,
      [](const Transaction& t, std::uint64_t n) { return t.nonce < n; });
  std::uint32_t n = 0;
  while (it != account.txs.end() && it->nonce == account.next_nonce + n) {
    ++n;
    ++it;
  }
  return n;
}

void TxPool::SetExecCount(Account& account, std::uint32_t exec) {
  pending_total_ += exec;
  pending_total_ -= account.exec_count;
  account.exec_count = exec;
  if (exec > 0 && account.head_slot == kNoSlot) {
    account.head_slot = static_cast<std::uint32_t>(heads_.size());
    heads_.push_back(&account);
  } else if (exec == 0 && account.head_slot != kNoSlot) {
    const std::uint32_t slot = account.head_slot;
    heads_[slot] = heads_.back();
    heads_[slot]->head_slot = slot;
    heads_.pop_back();
    account.head_slot = kNoSlot;
  }
}

TxPool::AddOutcome TxPool::Add(const Transaction& tx) {
  if (known_.contains(tx.hash)) return AddOutcome::kKnown;

  Account& account = accounts_[tx.sender];
  if (tx.nonce < account.next_nonce) return AddOutcome::kStale;

  const auto it = NonceSlot(account.txs, tx.nonce);
  if (it != account.txs.end() && it->nonce == tx.nonce) {
    // Same-slot replacement requires a strictly better price (Geth demands a
    // 10% bump; strict improvement is the behaviour that matters here).
    // The executable prefix is untouched: the slot stays occupied.
    if (tx.gas_price <= it->gas_price) return AddOutcome::kRejected;
    known_.erase(it->hash);
    *it = tx;
    known_.insert(tx.hash);
    return AddOutcome::kReplaced;
  }

  account.txs.insert(it, tx);
  known_.insert(tx.hash);
  if (tx.nonce == account.next_nonce + account.exec_count) {
    // Filled the first gap: the run extends over the new tx and then over
    // any queued txs the gap was holding back (promotion cascade).
    std::uint32_t exec = account.exec_count + 1;
    while (exec < account.txs.size() &&
           account.txs[exec].nonce == account.next_nonce + exec)
      ++exec;
    SetExecCount(account, exec);
  }
  return tx.nonce < account.next_nonce + account.exec_count
             ? AddOutcome::kPending
             : AddOutcome::kQueued;
}

void TxPool::SetAccountNonce(const Address& account_addr,
                             std::uint64_t nonce) {
  Account& account = accounts_[account_addr];
  if (nonce <= account.next_nonce) {
    account.next_nonce = std::max(account.next_nonce, nonce);
    return;
  }
  account.next_nonce = nonce;
  // Drop transactions made stale by the nonce jump.
  auto it = account.txs.begin();
  while (it != account.txs.end() && it->nonce < nonce) {
    known_.erase(it->hash);
    ++it;
  }
  account.txs.erase(account.txs.begin(), it);
  SetExecCount(account, CountExecutable(account));
}

void TxPool::RollbackAccountNonce(const Address& account_addr,
                                  std::uint64_t nonce) {
  Account& account = accounts_[account_addr];
  if (nonce < account.next_nonce) {
    account.next_nonce = nonce;
    // Pooled nonces all sit at or above the old next_nonce, so the rewind
    // opens a gap and the executable run collapses until the retired
    // transactions are re-added.
    SetExecCount(account, CountExecutable(account));
  }
}

std::uint64_t TxPool::AccountNonce(const Address& account) const {
  const auto it = accounts_.find(account);
  return it == accounts_.end() ? 0 : it->second.next_nonce;
}

void TxPool::RemoveIncluded(const std::vector<Transaction>& txs) {
  for (const auto& tx : txs) {
    known_.erase(tx.hash);
    Account& account = accounts_[tx.sender];
    const auto it = NonceSlot(account.txs, tx.nonce);
    // If the pooled tx at this (sender, nonce) is a replacement with a
    // different hash, only the pool slot is dropped here — its hash stays
    // in known_ (long-standing quirk, kept bit-for-bit: dedup against a
    // replaced-then-included tx still answers "known").
    if (it != account.txs.end() && it->nonce == tx.nonce)
      account.txs.erase(it);
    if (tx.nonce >= account.next_nonce)
      SetAccountNonce(tx.sender, tx.nonce + 1);
  }
}

std::vector<Transaction> TxPool::SelectForBlock(std::uint64_t gas_limit,
                                                std::size_t max_txs) const {
  // Price-and-nonce selection: a heap of per-account cursors keyed by the
  // gas price of the account's lowest executable nonce. Seeded from the
  // persistent heads_ index — only accounts with executable work, no
  // full-pool sweep. (gas_price, hash) keys are strictly distinct, so the
  // pop order is the same whatever the seed order.
  struct Cursor {
    const Account* account;
    std::uint32_t pos;        // index into account->txs
    std::uint32_t remaining;  // executable txs left for this account
  };
  auto price_less = [](const Cursor& a, const Cursor& b) {
    const Transaction& ta = a.account->txs[a.pos];
    const Transaction& tb = b.account->txs[b.pos];
    if (ta.gas_price != tb.gas_price) return ta.gas_price < tb.gas_price;
    // Deterministic tie-break on tx hash.
    return ta.hash < tb.hash;
  };

  std::vector<Cursor> heap;
  heap.reserve(heads_.size());
  for (const Account* account : heads_)
    heap.push_back({account, 0, account->exec_count});
  std::make_heap(heap.begin(), heap.end(), price_less);

  std::vector<Transaction> out;
  std::uint64_t gas_used = 0;
  while (!heap.empty() && out.size() < max_txs) {
    std::pop_heap(heap.begin(), heap.end(), price_less);
    const Cursor cur = heap.back();
    heap.pop_back();
    const Transaction& tx = cur.account->txs[cur.pos];
    if (gas_used + tx.gas_limit > gas_limit) continue;  // account blocked on gas
    gas_used += tx.gas_limit;
    out.push_back(tx);
    if (cur.remaining > 1) {
      heap.push_back({cur.account, cur.pos + 1, cur.remaining - 1});
      std::push_heap(heap.begin(), heap.end(), price_less);
    }
  }
  return out;
}

bool TxPool::CheckInvariants() const {
#define ETHSIM_POOL_CHECK(cond)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "TxPool invariant violated: %s (%s:%d)\n",      \
                   #cond, __FILE__, __LINE__);                             \
      return false;                                                        \
    }                                                                      \
  } while (0)

  std::size_t pending_sum = 0;
  std::size_t pooled = 0;
  std::size_t with_heads = 0;
  for (const auto& [addr, account] : accounts_) {
    for (std::size_t i = 0; i < account.txs.size(); ++i) {
      const Transaction& tx = account.txs[i];
      ETHSIM_POOL_CHECK(tx.sender == addr);
      ETHSIM_POOL_CHECK(tx.nonce >= account.next_nonce);
      if (i > 0) ETHSIM_POOL_CHECK(account.txs[i - 1].nonce < tx.nonce);
      ETHSIM_POOL_CHECK(known_.contains(tx.hash));
    }
    // The cached run length must equal a from-scratch recount, and a
    // non-empty run always starts at the vector front.
    ETHSIM_POOL_CHECK(account.exec_count == CountExecutable(account));
    if (account.exec_count > 0) {
      ETHSIM_POOL_CHECK(account.txs.front().nonce == account.next_nonce);
      ETHSIM_POOL_CHECK(account.head_slot != kNoSlot &&
                        account.head_slot < heads_.size());
      ETHSIM_POOL_CHECK(heads_[account.head_slot] == &account);
      ++with_heads;
    } else {
      ETHSIM_POOL_CHECK(account.head_slot == kNoSlot);
    }
    pending_sum += account.exec_count;
    pooled += account.txs.size();
  }
  ETHSIM_POOL_CHECK(pending_sum == pending_total_);
  ETHSIM_POOL_CHECK(with_heads == heads_.size());
  // known_ can run ahead of the pooled set (RemoveIncluded replacement
  // quirk) but never behind it.
  ETHSIM_POOL_CHECK(known_.size() >= pooled);
#undef ETHSIM_POOL_CHECK
  return true;
}

}  // namespace ethsim::chain
