#include "chain/blocktree.hpp"

#include <algorithm>
#include <cassert>

namespace ethsim::chain {

BlockTree::BlockTree(BlockPtr genesis) {
  assert(genesis && genesis->hash == genesis->header.Hash());
  genesis_ = genesis->hash;
  genesis_number_ = genesis->header.number;
  head_ = genesis_;
  Node node;
  node.block = genesis;
  node.total_difficulty = genesis->header.difficulty;
  nodes_.emplace(genesis_, std::move(node));
  by_height_[genesis_number_].push_back(genesis_);
  canonical_[genesis_number_] = genesis_;
}

bool BlockTree::Contains(const Hash32& hash) const { return nodes_.contains(hash); }

BlockPtr BlockTree::Get(const Hash32& hash) const {
  const auto it = nodes_.find(hash);
  return it == nodes_.end() ? nullptr : it->second.block;
}

TimePoint BlockTree::FirstSeen(const Hash32& hash) const {
  const auto it = nodes_.find(hash);
  return it == nodes_.end() ? TimePoint{} : it->second.first_seen;
}

std::uint64_t BlockTree::head_number() const {
  return nodes_.at(head_).block->header.number;
}

std::uint64_t BlockTree::TotalDifficulty(const Hash32& hash) const {
  const auto it = nodes_.find(hash);
  return it == nodes_.end() ? 0 : it->second.total_difficulty;
}

bool BlockTree::IsCanonical(const Hash32& hash) const {
  const auto it = nodes_.find(hash);
  if (it == nodes_.end()) return false;
  const auto c = canonical_.find(it->second.block->header.number);
  return c != canonical_.end() && c->second == hash;
}

Hash32 BlockTree::CanonicalAt(std::uint64_t number) const {
  const auto it = canonical_.find(number);
  return it == canonical_.end() ? Hash32{} : it->second;
}

BlockTree::AddResult BlockTree::Add(BlockPtr block, TimePoint received) {
  assert(block);
  AddResult result;
  if (nodes_.contains(block->hash)) {
    result.outcome = AddOutcome::kDuplicate;
    return result;
  }
  if (!nodes_.contains(block->header.parent_hash)) {
    // Buffer until the parent shows up (announcement/fetch races make this
    // a normal occurrence, not an error).
    orphans_[block->header.parent_hash].emplace_back(std::move(block), received);
    result.outcome = AddOutcome::kOrphaned;
    return result;
  }

  Attach(std::move(block), received, result);
  return result;
}

void BlockTree::Attach(BlockPtr block, TimePoint received, AddResult& result) {
  const Hash32 hash = block->hash;
  const auto& parent = nodes_.at(block->header.parent_hash);
  assert(block->header.number == parent.block->header.number + 1);

  Node node;
  node.block = block;
  node.total_difficulty = parent.total_difficulty + block->header.difficulty;
  node.first_seen = received;
  nodes_.emplace(hash, std::move(node));
  by_height_[block->header.number].push_back(hash);

  MaybeReorg(hash, result);

  // Adopt any orphans that were waiting for this block, recursively.
  if (const auto it = orphans_.find(hash); it != orphans_.end()) {
    auto waiting = std::move(it->second);
    orphans_.erase(it);
    for (auto& [child, child_received] : waiting)
      Attach(std::move(child), child_received, result);
  }
}

void BlockTree::MaybeReorg(const Hash32& candidate, AddResult& result) {
  const Node& cand = nodes_.at(candidate);
  const Node& cur = nodes_.at(head_);
  // Heaviest chain wins; on exact ties keep the first-seen head (Geth keeps
  // its current chain unless the new one is strictly heavier... except that
  // Geth 1.8 actually coin-flips equal-difficulty reorgs; we keep
  // first-seen for determinism, which is also what the paper's measurement
  // nodes effectively record).
  if (cand.total_difficulty <= cur.total_difficulty) {
    if (result.outcome != AddOutcome::kAddedNewHead)
      result.outcome = AddOutcome::kAdded;
    return;
  }

  // Walk the new head's ancestry down to the first block that is already
  // canonical; everything above it on the old chain retires.
  std::vector<BlockPtr> adopted;
  Hash32 cursor = candidate;
  while (!IsCanonical(cursor)) {
    const Node& n = nodes_.at(cursor);
    adopted.push_back(n.block);
    if (cursor == genesis_) break;
    cursor = n.block->header.parent_hash;
  }
  const std::uint64_t fork_point = nodes_.at(cursor).block->header.number;

  const std::uint64_t old_head_number = nodes_.at(head_).block->header.number;
  for (std::uint64_t h = fork_point + 1; h <= old_head_number; ++h) {
    const auto it = canonical_.find(h);
    if (it == canonical_.end()) break;
    result.retired.push_back(nodes_.at(it->second).block);
    canonical_.erase(it);
  }

  std::reverse(adopted.begin(), adopted.end());
  for (const auto& b : adopted) canonical_[b->header.number] = b->hash;
  result.adopted.insert(result.adopted.end(), adopted.begin(), adopted.end());

  head_ = candidate;
  result.outcome = AddOutcome::kAddedNewHead;
}

std::vector<BlockHeader> BlockTree::UncleCandidates(
    const Hash32& parent, std::size_t max_uncles,
    bool forbid_same_miner_as_main) const {
  const auto parent_it = nodes_.find(parent);
  if (parent_it == nodes_.end()) return {};
  const std::uint64_t child_number = parent_it->second.block->header.number + 1;

  // Collect up to 7 ancestors of the child (starting at the parent) plus the
  // uncle hashes they already reference; both are excluded.
  std::vector<Hash32> ancestors;
  std::vector<Hash32> excluded;
  std::unordered_map<std::uint64_t, Address> main_miner_at;  // per height
  Hash32 cursor = parent;
  for (int depth = 0; depth < 7; ++depth) {
    const auto it = nodes_.find(cursor);
    if (it == nodes_.end()) break;
    ancestors.push_back(cursor);
    excluded.push_back(cursor);
    main_miner_at.emplace(it->second.block->header.number,
                          it->second.block->header.miner);
    for (const auto& u : it->second.block->uncles) excluded.push_back(u.Hash());
    if (cursor == genesis_) break;
    cursor = it->second.block->header.parent_hash;
  }

  auto is_excluded = [&](const Hash32& h) {
    return std::find(excluded.begin(), excluded.end(), h) != excluded.end();
  };
  auto is_ancestor = [&](const Hash32& h) {
    return std::find(ancestors.begin(), ancestors.end(), h) != ancestors.end();
  };

  struct Candidate {
    BlockHeader header;
    TimePoint first_seen;
    Hash32 hash;
  };
  std::vector<Candidate> candidates;
  const std::uint64_t min_height =
      child_number > 6 ? child_number - 6 : genesis_number_;
  for (std::uint64_t h = min_height; h < child_number; ++h) {
    const auto it = by_height_.find(h);
    if (it == by_height_.end()) continue;
    for (const Hash32& hash : it->second) {
      if (is_excluded(hash)) continue;
      const Node& n = nodes_.at(hash);
      // Yellow-paper rule: the uncle's parent must be an ancestor of the
      // including block (i.e., the uncle is a sibling of some ancestor).
      if (!is_ancestor(n.block->header.parent_hash)) continue;
      // §V proposal: no uncle credit to a miner that already holds the
      // main-chain slot at the same height.
      if (forbid_same_miner_as_main) {
        const auto main_it = main_miner_at.find(h);
        if (main_it != main_miner_at.end() &&
            main_it->second == n.block->header.miner)
          continue;
      }
      candidates.push_back({n.block->header, n.first_seen, hash});
    }
  }

  std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
    if (a.first_seen != b.first_seen) return a.first_seen < b.first_seen;
    return a.hash < b.hash;
  });
  if (candidates.size() > max_uncles) candidates.resize(max_uncles);

  std::vector<BlockHeader> out;
  out.reserve(candidates.size());
  for (auto& c : candidates) out.push_back(c.header);
  return out;
}

std::vector<Hash32> BlockTree::HashesAtHeight(std::uint64_t number) const {
  const auto it = by_height_.find(number);
  return it == by_height_.end() ? std::vector<Hash32>{} : it->second;
}

std::vector<BlockPtr> BlockTree::AllBlocks() const {
  std::vector<BlockPtr> out;
  out.reserve(nodes_.size());
  for (const auto& [hash, node] : nodes_) out.push_back(node.block);
  return out;
}

std::vector<BlockPtr> BlockTree::CanonicalChain() const {
  std::vector<BlockPtr> out;
  const std::uint64_t top = head_number();
  out.reserve(top - genesis_number_ + 1);
  for (std::uint64_t h = genesis_number_; h <= top; ++h) {
    const auto it = canonical_.find(h);
    assert(it != canonical_.end());
    out.push_back(nodes_.at(it->second).block);
  }
  return out;
}

}  // namespace ethsim::chain
