#include "chain/blocktree.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ethsim::chain {

BlockTree::BlockTree(BlockPtr genesis) {
  assert(genesis && genesis->hash == genesis->header.Hash());
  genesis_ = genesis->hash;
  genesis_number_ = genesis->header.number;
  head_ = genesis_;
  genesis_id_ = InternNode(genesis_);
  head_id_ = genesis_id_;
  Node& node = nodes_[genesis_id_];
  node.block = genesis;
  node.total_difficulty = genesis->header.difficulty;
  ++attached_;
  HeightBucket(genesis_number_).push_back(genesis_id_);
  CanonicalSlot(genesis_number_) = genesis_id_;
}

BlockTree::BlockId BlockTree::InternNode(const Hash32& hash) {
  const BlockId id = interner_.Intern(hash);
  if (id >= nodes_.size()) nodes_.resize(id + 1);
  return id;
}

BlockTree::BlockId BlockTree::FindAttached(const Hash32& hash) const {
  const BlockId id = interner_.Find(hash);
  if (id == kNoId || nodes_[id].block == nullptr) return kNoId;
  return id;
}

std::vector<BlockTree::BlockId>& BlockTree::HeightBucket(
    std::uint64_t number) {
  const std::size_t index = number - genesis_number_;
  if (index >= by_height_.size()) by_height_.resize(index + 1);
  return by_height_[index];
}

BlockTree::BlockId& BlockTree::CanonicalSlot(std::uint64_t number) {
  const std::size_t index = number - genesis_number_;
  if (index >= canonical_.size()) canonical_.resize(index + 1, kNoId);
  return canonical_[index];
}

bool BlockTree::Contains(const Hash32& hash) const {
  return FindAttached(hash) != kNoId;
}

BlockPtr BlockTree::Get(const Hash32& hash) const {
  const BlockId id = FindAttached(hash);
  return id == kNoId ? nullptr : nodes_[id].block;
}

TimePoint BlockTree::FirstSeen(const Hash32& hash) const {
  const BlockId id = FindAttached(hash);
  return id == kNoId ? TimePoint{} : nodes_[id].first_seen;
}

std::uint64_t BlockTree::head_number() const {
  return nodes_[head_id_].block->header.number;
}

std::uint64_t BlockTree::TotalDifficulty(const Hash32& hash) const {
  const BlockId id = FindAttached(hash);
  return id == kNoId ? 0 : nodes_[id].total_difficulty;
}

bool BlockTree::IsCanonical(const Hash32& hash) const {
  const BlockId id = FindAttached(hash);
  if (id == kNoId) return false;
  const std::size_t index =
      nodes_[id].block->header.number - genesis_number_;
  return index < canonical_.size() && canonical_[index] == id;
}

Hash32 BlockTree::CanonicalAt(std::uint64_t number) const {
  if (number < genesis_number_) return Hash32{};
  const std::size_t index = number - genesis_number_;
  if (index >= canonical_.size() || canonical_[index] == kNoId)
    return Hash32{};
  return interner_.Resolve(canonical_[index]);
}

BlockTree::AddResult BlockTree::Add(BlockPtr block, TimePoint received) {
  assert(block);
  AddResult result;
  if (FindAttached(block->hash) != kNoId) {
    result.outcome = AddOutcome::kDuplicate;
    return result;
  }
  if (FindAttached(block->header.parent_hash) == kNoId) {
    // Buffer until the parent shows up (announcement/fetch races make this
    // a normal occurrence, not an error). Interning the missing parent
    // reserves its id, so the eventual attach finds the waiters directly.
    orphans_[InternNode(block->header.parent_hash)].emplace_back(block,
                                                                 received);
    result.outcome = AddOutcome::kOrphaned;
    return result;
  }

  Attach(block, received, result);
  return result;
}

void BlockTree::Attach(BlockPtr block, TimePoint received,
                       AddResult& result) {
  const BlockId parent_id = FindAttached(block->header.parent_hash);
  assert(parent_id != kNoId);
  assert(block->header.number == nodes_[parent_id].block->header.number + 1);
  const std::uint64_t td =
      nodes_[parent_id].total_difficulty + block->header.difficulty;

  const BlockId id = InternNode(block->hash);
  Node& node = nodes_[id];
  if (node.block == nullptr) {
    node.block = block;
    node.total_difficulty = td;
    node.first_seen = received;
    node.parent = parent_id;
    node.next_sibling = nodes_[parent_id].first_child;
    nodes_[parent_id].first_child = id;
    ++attached_;
  }
  // Unconditional on purpose: if the same block was buffered twice as an
  // orphan the second attach is a no-op above, but the height bucket has
  // always picked up the duplicate entry and downstream consumers (uncle
  // scan, HashesAtHeight) see it — preserved bit-for-bit from the
  // hash-map-era tree.
  HeightBucket(block->header.number).push_back(id);

  MaybeReorg(id, result);

  // Adopt any orphans that were waiting for this block, recursively.
  if (const auto it = orphans_.find(id); it != orphans_.end()) {
    auto waiting = std::move(it->second);
    orphans_.erase(it);
    for (auto& [child, child_received] : waiting)
      Attach(child, child_received, result);
  }
}

void BlockTree::MaybeReorg(BlockId candidate, AddResult& result) {
  // Heaviest chain wins; on exact ties keep the first-seen head (Geth keeps
  // its current chain unless the new one is strictly heavier... except that
  // Geth 1.8 actually coin-flips equal-difficulty reorgs; we keep
  // first-seen for determinism, which is also what the paper's measurement
  // nodes effectively record).
  if (nodes_[candidate].total_difficulty <=
      nodes_[head_id_].total_difficulty) {
    if (result.outcome != AddOutcome::kAddedNewHead)
      result.outcome = AddOutcome::kAdded;
    return;
  }

  // Walk the new head's ancestry down to the first block that is already
  // canonical; everything above it on the old chain retires.
  auto is_canonical_id = [&](BlockId id) {
    const std::size_t index =
        nodes_[id].block->header.number - genesis_number_;
    return index < canonical_.size() && canonical_[index] == id;
  };
  std::vector<BlockPtr> adopted;
  BlockId cursor = candidate;
  while (!is_canonical_id(cursor)) {
    adopted.push_back(nodes_[cursor].block);
    if (cursor == genesis_id_) break;
    cursor = nodes_[cursor].parent;
  }
  const std::uint64_t fork_point = nodes_[cursor].block->header.number;

  const std::uint64_t old_head_number =
      nodes_[head_id_].block->header.number;
  for (std::uint64_t h = fork_point + 1; h <= old_head_number; ++h) {
    BlockId& slot = canonical_[h - genesis_number_];
    if (slot == kNoId) break;
    result.retired.push_back(nodes_[slot].block);
    slot = kNoId;
  }

  std::reverse(adopted.begin(), adopted.end());
  for (const BlockPtr& b : adopted)
    CanonicalSlot(b->header.number) = FindAttached(b->hash);
  result.adopted.insert(result.adopted.end(), adopted.begin(), adopted.end());

  head_id_ = candidate;
  head_ = nodes_[candidate].block->hash;
  result.outcome = AddOutcome::kAddedNewHead;
  if (record_reorg_steps_) [[unlikely]]
    result.steps.push_back(
        {static_cast<std::uint32_t>(result.retired.size()),
         static_cast<std::uint32_t>(result.adopted.size())});
}

std::vector<BlockHeader> BlockTree::UncleCandidates(
    const Hash32& parent, std::size_t max_uncles,
    bool forbid_same_miner_as_main) const {
  const BlockId parent_id = FindAttached(parent);
  if (parent_id == kNoId) return {};
  const std::uint64_t child_number =
      nodes_[parent_id].block->header.number + 1;

  // Collect up to 7 ancestors of the child (starting at the parent) plus the
  // uncle hashes they already reference; both are excluded.
  std::vector<BlockId> ancestors;
  std::vector<Hash32> excluded;
  std::unordered_map<std::uint64_t, Address> main_miner_at;  // per height
  BlockId cursor = parent_id;
  for (int depth = 0; depth < 7; ++depth) {
    const Node& n = nodes_[cursor];
    ancestors.push_back(cursor);
    excluded.push_back(n.block->hash);
    main_miner_at.emplace(n.block->header.number, n.block->header.miner);
    for (const auto& u : n.block->uncles) excluded.push_back(u.Hash());
    if (cursor == genesis_id_) break;
    cursor = n.parent;
  }

  auto is_excluded = [&](const Hash32& h) {
    return std::find(excluded.begin(), excluded.end(), h) != excluded.end();
  };
  auto is_ancestor = [&](BlockId id) {
    return std::find(ancestors.begin(), ancestors.end(), id) !=
           ancestors.end();
  };

  struct Candidate {
    BlockHeader header;
    TimePoint first_seen;
    Hash32 hash;
  };
  std::vector<Candidate> candidates;
  const std::uint64_t min_height =
      child_number > 6 ? child_number - 6 : genesis_number_;
  for (std::uint64_t h = min_height; h < child_number; ++h) {
    const std::size_t index = h - genesis_number_;
    if (index >= by_height_.size()) continue;
    for (const BlockId id : by_height_[index]) {
      const Node& n = nodes_[id];
      if (is_excluded(n.block->hash)) continue;
      // Yellow-paper rule: the uncle's parent must be an ancestor of the
      // including block (i.e., the uncle is a sibling of some ancestor).
      if (!is_ancestor(n.parent)) continue;
      // §V proposal: no uncle credit to a miner that already holds the
      // main-chain slot at the same height.
      if (forbid_same_miner_as_main) {
        const auto main_it = main_miner_at.find(h);
        if (main_it != main_miner_at.end() &&
            main_it->second == n.block->header.miner)
          continue;
      }
      candidates.push_back({n.block->header, n.first_seen, n.block->hash});
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.first_seen != b.first_seen)
                return a.first_seen < b.first_seen;
              return a.hash < b.hash;
            });
  if (candidates.size() > max_uncles) candidates.resize(max_uncles);

  std::vector<BlockHeader> out;
  out.reserve(candidates.size());
  for (auto& c : candidates) out.push_back(c.header);
  return out;
}

std::vector<Hash32> BlockTree::HashesAtHeight(std::uint64_t number) const {
  if (number < genesis_number_) return {};
  const std::size_t index = number - genesis_number_;
  if (index >= by_height_.size()) return {};
  std::vector<Hash32> out;
  out.reserve(by_height_[index].size());
  for (const BlockId id : by_height_[index])
    out.push_back(nodes_[id].block->hash);
  return out;
}

std::vector<BlockPtr> BlockTree::AllBlocks() const {
  std::vector<BlockPtr> out;
  out.reserve(attached_);
  for (const Node& node : nodes_)
    if (node.block != nullptr) out.push_back(node.block);
  return out;
}

std::vector<BlockPtr> BlockTree::CanonicalChain() const {
  std::vector<BlockPtr> out;
  const std::uint64_t top = head_number();
  out.reserve(top - genesis_number_ + 1);
  for (std::uint64_t h = genesis_number_; h <= top; ++h) {
    const BlockId id = canonical_[h - genesis_number_];
    assert(id != kNoId);
    out.push_back(nodes_[id].block);
  }
  return out;
}

bool BlockTree::CheckInvariants() const {
#define ETHSIM_TREE_CHECK(cond)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "BlockTree invariant violated: %s (%s:%d)\n",    \
                   #cond, __FILE__, __LINE__);                              \
      return false;                                                         \
    }                                                                       \
  } while (0)

  ETHSIM_TREE_CHECK(nodes_.size() == interner_.size());
  std::size_t attached_seen = 0;
  std::size_t child_links = 0;
  for (BlockId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.block == nullptr) {
      // Reserved id (orphan's missing parent): carries no tree state.
      ETHSIM_TREE_CHECK(node.parent == kNoId && node.first_child == kNoId);
      continue;
    }
    ++attached_seen;
    ETHSIM_TREE_CHECK(node.block->hash == interner_.Resolve(id));
    if (id == genesis_id_) {
      ETHSIM_TREE_CHECK(node.parent == kNoId);
      ETHSIM_TREE_CHECK(node.total_difficulty ==
                        node.block->header.difficulty);
    } else {
      ETHSIM_TREE_CHECK(node.parent != kNoId &&
                        node.parent < nodes_.size());
      const Node& parent = nodes_[node.parent];
      ETHSIM_TREE_CHECK(parent.block != nullptr);
      ETHSIM_TREE_CHECK(node.block->header.parent_hash ==
                        parent.block->hash);
      ETHSIM_TREE_CHECK(node.block->header.number ==
                        parent.block->header.number + 1);
      ETHSIM_TREE_CHECK(node.total_difficulty ==
                        parent.total_difficulty +
                            node.block->header.difficulty);
    }
    // Child list: every entry names this node as parent; the list is no
    // longer than the arena, which rules out sibling cycles.
    std::size_t len = 0;
    for (BlockId c = node.first_child; c != kNoId;
         c = nodes_[c].next_sibling) {
      ETHSIM_TREE_CHECK(c < nodes_.size() && nodes_[c].parent == id);
      ETHSIM_TREE_CHECK(++len <= nodes_.size());
    }
    child_links += len;
  }
  ETHSIM_TREE_CHECK(attached_seen == attached_);
  // Every non-genesis attached node appears on exactly one child list.
  ETHSIM_TREE_CHECK(child_links == attached_ - 1);

  // Height buckets refer to attached nodes at the right height. Duplicate
  // entries are legal (double-buffered orphan quirk); each distinct id must
  // appear in exactly one bucket.
  std::size_t distinct_in_buckets = 0;
  std::vector<bool> seen_in_bucket(nodes_.size(), false);
  for (std::size_t index = 0; index < by_height_.size(); ++index) {
    for (const BlockId id : by_height_[index]) {
      ETHSIM_TREE_CHECK(id < nodes_.size() && nodes_[id].block != nullptr);
      ETHSIM_TREE_CHECK(nodes_[id].block->header.number ==
                        genesis_number_ + index);
      if (!seen_in_bucket[id]) {
        seen_in_bucket[id] = true;
        ++distinct_in_buckets;
      }
    }
  }
  ETHSIM_TREE_CHECK(distinct_in_buckets == attached_);

  // Canonical index: contiguous genesis..head, linked parent-to-parent.
  const std::uint64_t top = nodes_[head_id_].block->header.number;
  ETHSIM_TREE_CHECK(top - genesis_number_ < canonical_.size());
  ETHSIM_TREE_CHECK(canonical_[top - genesis_number_] == head_id_);
  ETHSIM_TREE_CHECK(canonical_[0] == genesis_id_);
  for (std::uint64_t h = genesis_number_; h <= top; ++h) {
    const BlockId id = canonical_[h - genesis_number_];
    ETHSIM_TREE_CHECK(id != kNoId && nodes_[id].block != nullptr);
    ETHSIM_TREE_CHECK(nodes_[id].block->header.number == h);
    if (h > genesis_number_)
      ETHSIM_TREE_CHECK(nodes_[id].parent ==
                        canonical_[h - 1 - genesis_number_]);
  }
  for (std::size_t index = top - genesis_number_ + 1;
       index < canonical_.size(); ++index)
    ETHSIM_TREE_CHECK(canonical_[index] == kNoId);

  // Orphan buffers wait on ids that are either unattached or (transiently
  // impossible) attached — after Add returns, a waited-on parent is never
  // attached, since attaching drains its waiters.
  for (const auto& [parent_id, waiting] : orphans_) {
    ETHSIM_TREE_CHECK(parent_id < nodes_.size());
    ETHSIM_TREE_CHECK(nodes_[parent_id].block == nullptr);
    ETHSIM_TREE_CHECK(!waiting.empty());
  }
#undef ETHSIM_TREE_CHECK
  return true;
}

}  // namespace ethsim::chain
