// Blocks: header + transactions + uncle headers, identified by
// keccak256(rlp(header)) as in Ethereum. The `mix_seed` field plays the role
// of the PoW nonce/mixHash: two blocks a miner builds with identical content
// still get distinct hashes, which is what makes one-miner forks (§III-C5)
// observable at all.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/transaction.hpp"
#include "common/rlp.hpp"
#include "common/types.hpp"

namespace ethsim::chain {

struct BlockHeader {
  Hash32 parent_hash;
  std::uint64_t number = 0;
  std::uint64_t difficulty = 0;
  std::uint64_t timestamp = 0;  // seconds since simulation epoch
  Address miner;                // coinbase of the producing pool/miner
  Hash32 tx_root;               // commitment over the body's transactions
  Hash32 uncle_root;            // commitment over referenced uncle headers
  std::uint64_t gas_limit = 8'000'000;
  std::uint64_t gas_used = 0;
  std::uint64_t mix_seed = 0;  // PoW mix stand-in; randomizes the hash

  Hash32 Hash() const;  // keccak256(rlp(header))
};

rlp::Bytes EncodeHeader(const BlockHeader& h);

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;
  std::vector<BlockHeader> uncles;

  Hash32 hash;  // cached header hash; set by Seal()

  // Recomputes tx_root/uncle_root/gas_used from the body, caches the header
  // hash and the wire size. Call after assembling or mutating the body.
  void Seal();

  bool IsEmpty() const { return transactions.empty(); }

  // Wire size of the full block (header + body), for the bandwidth model.
  // O(1) after Seal(): a block is relayed O(sqrt(peers) + peers) times per
  // node and re-walking every transaction on each send dominated the gossip
  // profile. Falls back to the walk for unsealed blocks (tests).
  std::size_t EncodedSize() const {
    return encoded_size != 0 ? encoded_size : ComputeEncodedSize();
  }

  // Memoized intrinsic-integrity verdict (seal / tx-root / uncle-root
  // recomputation), maintained by chain::ValidateBlock and reset by Seal().
  // Those checks are pure functions of the block, and a gossiped block is
  // immutable and shared by every node, so the keccak-heavy recomputation
  // runs once per block instead of once per validating node. Mutating a
  // sealed block without re-sealing invalidates the memo (as it already
  // invalidates `hash`); bit layout lives in validation.cpp. 0 = unset.
  mutable std::uint8_t integrity_memo = 0;

 private:
  std::size_t ComputeEncodedSize() const;
  std::size_t encoded_size = 0;  // cached by Seal(); 0 = not sealed

 public:
};

// Borrowed 8-byte handle to an immutable, arena-owned block. Blocks live in
// a chain::BlockArena that outlives every holder (nodes, gossip closures,
// mint records, trees), so there is no ownership to share — a plain pointer
// replaces the shared_ptr<const Block> this alias used to be, and relay
// hot paths stop paying atomic refcount traffic per hop.
using BlockPtr = const Block*;

// Commitment over an ordered list of transaction hashes (simplified
// Merkle root: keccak of the concatenation; order-sensitive).
Hash32 ComputeTxRoot(const std::vector<Transaction>& txs);
Hash32 ComputeUncleRoot(const std::vector<BlockHeader>& uncles);

// Header-only wire size (announcement follow-up fetches use this).
inline constexpr std::size_t kHeaderWireSize = 530;  // mainnet headers ≈ 508-540 B

}  // namespace ethsim::chain
