#include "chain/validation.hpp"

#include <unordered_map>
#include <unordered_set>

namespace ethsim::chain {

std::string_view ValidationErrorName(ValidationError error) {
  switch (error) {
    case ValidationError::kNone: return "none";
    case ValidationError::kBadSeal: return "bad-seal";
    case ValidationError::kBadNumber: return "bad-number";
    case ValidationError::kBadTimestamp: return "bad-timestamp";
    case ValidationError::kBadTxRoot: return "bad-tx-root";
    case ValidationError::kBadUncleRoot: return "bad-uncle-root";
    case ValidationError::kBadGasUsed: return "bad-gas-used";
    case ValidationError::kGasOverLimit: return "gas-over-limit";
    case ValidationError::kTooManyUncles: return "too-many-uncles";
    case ValidationError::kDuplicateUncle: return "duplicate-uncle";
    case ValidationError::kBadUncleRange: return "bad-uncle-range";
    case ValidationError::kSelfUncle: return "self-uncle";
    case ValidationError::kNonceOrder: return "nonce-order";
    case ValidationError::kBadDifficulty: return "bad-difficulty";
  }
  return "?";
}

namespace {

// Bit layout of Block::integrity_memo. The seal/tx-root/uncle-root checks
// recompute keccak digests over the (immutable once gossiped) block, so the
// first validating node stores the three verdicts on the block and the other
// N-1 nodes reuse them. The check *order* below is unchanged from the
// uncached version — only the digest recomputation is shared.
constexpr std::uint8_t kMemoComputed = 1u << 0;
constexpr std::uint8_t kMemoSealOk = 1u << 1;
constexpr std::uint8_t kMemoTxRootOk = 1u << 2;
constexpr std::uint8_t kMemoUncleRootOk = 1u << 3;

std::uint8_t IntegrityMemoFor(const Block& block) {
  if ((block.integrity_memo & kMemoComputed) == 0) {
    std::uint8_t memo = kMemoComputed;
    if (block.hash == block.header.Hash()) memo |= kMemoSealOk;
    if (block.header.tx_root == ComputeTxRoot(block.transactions))
      memo |= kMemoTxRootOk;
    if (block.header.uncle_root == ComputeUncleRoot(block.uncles))
      memo |= kMemoUncleRootOk;
    block.integrity_memo = memo;
  }
  return block.integrity_memo;
}

}  // namespace

ValidationError ValidateBlock(const Block& block, const BlockHeader& parent,
                              const DifficultyParams* difficulty_params) {
  const BlockHeader& h = block.header;
  const std::uint8_t memo = IntegrityMemoFor(block);

  if ((memo & kMemoSealOk) == 0) return ValidationError::kBadSeal;
  if (h.number != parent.number + 1) return ValidationError::kBadNumber;
  if (h.timestamp <= parent.timestamp) return ValidationError::kBadTimestamp;
  if ((memo & kMemoTxRootOk) == 0) return ValidationError::kBadTxRoot;
  if ((memo & kMemoUncleRootOk) == 0) return ValidationError::kBadUncleRoot;

  std::uint64_t gas = 0;
  for (const auto& tx : block.transactions) gas += tx.gas_limit;
  if (h.gas_used != gas) return ValidationError::kBadGasUsed;
  if (h.gas_used > h.gas_limit) return ValidationError::kGasOverLimit;

  if (block.uncles.size() > 2) return ValidationError::kTooManyUncles;
  std::unordered_set<Hash32> uncle_hashes;
  for (const auto& uncle : block.uncles) {
    const Hash32 uncle_hash = uncle.Hash();
    if (!uncle_hashes.insert(uncle_hash).second)
      return ValidationError::kDuplicateUncle;
    if (uncle_hash == block.hash || uncle_hash == h.parent_hash)
      return ValidationError::kSelfUncle;
    if (uncle.number >= h.number || uncle.number + 6 < h.number)
      return ValidationError::kBadUncleRange;
  }

  // Per-sender nonce streams inside a block must be strictly increasing.
  std::unordered_map<Address, std::uint64_t> last_nonce;
  for (const auto& tx : block.transactions) {
    const auto it = last_nonce.find(tx.sender);
    if (it != last_nonce.end() && tx.nonce <= it->second)
      return ValidationError::kNonceOrder;
    last_nonce[tx.sender] = tx.nonce;
  }

  if (difficulty_params != nullptr) {
    const std::uint64_t expected =
        NextDifficulty(parent.difficulty, parent.timestamp, false, h.timestamp,
                       h.number, *difficulty_params);
    // Parent uncle status isn't visible from the header alone; accept
    // either branch of the EIP-100 uncle term.
    const std::uint64_t expected_uncles =
        NextDifficulty(parent.difficulty, parent.timestamp, true, h.timestamp,
                       h.number, *difficulty_params);
    if (h.difficulty != expected && h.difficulty != expected_uncles)
      return ValidationError::kBadDifficulty;
  }
  return ValidationError::kNone;
}

}  // namespace ethsim::chain
