#include "chain/difficulty.hpp"

#include <algorithm>

namespace ethsim::chain {

std::uint64_t NextDifficulty(std::uint64_t parent_difficulty,
                             std::uint64_t parent_timestamp,
                             bool parent_has_uncles,
                             std::uint64_t child_timestamp,
                             std::uint64_t child_number,
                             const DifficultyParams& params) {
  const std::int64_t uncles_term = parent_has_uncles ? 2 : 1;
  const std::int64_t elapsed =
      static_cast<std::int64_t>(child_timestamp) -
      static_cast<std::int64_t>(parent_timestamp);
  const std::int64_t sensitivity =
      std::max<std::int64_t>(uncles_term - elapsed / 9, -99);

  const std::int64_t quotient =
      static_cast<std::int64_t>(parent_difficulty / 2048);
  std::int64_t diff =
      static_cast<std::int64_t>(parent_difficulty) + quotient * sensitivity;

  // Difficulty bomb: doubles every 100k blocks past the (delayed) trigger.
  const std::uint64_t fake_number =
      child_number > params.bomb_delay_blocks
          ? child_number - params.bomb_delay_blocks
          : 0;
  const std::uint64_t periods = fake_number / 100'000;
  if (periods >= 2 && periods - 2 < 63)
    diff += static_cast<std::int64_t>(std::uint64_t{1} << (periods - 2));

  return std::max<std::int64_t>(
      diff, static_cast<std::int64_t>(params.minimum_difficulty));
}

}  // namespace ethsim::chain
