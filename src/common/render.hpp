// Plain-text rendering of tables, bar charts, histograms and CDF plots.
// Bench binaries use these to print paper-style figures next to the paper's
// reported numbers.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"

namespace ethsim::render {

// Column-aligned ASCII table with a header rule.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Horizontal bar chart; one row per label, bars scaled to the max value.
// `value_fmt` renders the numeric annotation (e.g. "40.1%").
struct Bar {
  std::string label;
  double value = 0;
  std::string annotation;
};
std::string BarChart(const std::vector<Bar>& bars, int width = 48);

// Stacked horizontal bars where each row's segments sum to 100%.
// Used for Fig 3 (per-pool first-observation split across regions).
struct StackedBar {
  std::string label;
  std::vector<double> shares;  // same order as `legend`
};
std::string StackedBarChart(const std::vector<StackedBar>& bars,
                            const std::vector<std::string>& legend,
                            int width = 48);

// Vertical histogram like the paper's Fig 1.
std::string HistogramChart(const Histogram& hist, const std::string& x_label,
                           int height = 12);

// Multi-series CDF line plot (x ascending). Series get glyphs 1..9,a..z.
struct Series {
  std::string name;
  std::vector<CdfPoint> points;
};
std::string CdfChart(const std::vector<Series>& series, const std::string& x_label,
                     int width = 72, int height = 20, bool log_x = false);

// Number formatting helpers.
std::string Fmt(double v, int decimals = 2);
std::string Percent(double fraction, int decimals = 1);

}  // namespace ethsim::render
