#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ethsim {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::Add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double SampleSet::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double SampleSet::min() const {
  return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
}

double SampleSet::max() const {
  return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
}

void SampleSet::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSet::Quantile(double q) const {
  if (values_.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  EnsureSorted();
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SampleSet::CdfAt(double x) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double x) {
  std::ptrdiff_t bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::BinLow(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::BinHigh(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::Fraction(std::size_t bin) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::vector<CdfPoint> MakeCdf(const SampleSet& samples, std::size_t points) {
  std::vector<CdfPoint> out;
  if (samples.empty() || points < 2) return out;
  out.reserve(points);
  const double lo = samples.min();
  const double hi = samples.max();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({x, samples.CdfAt(x)});
  }
  return out;
}

}  // namespace ethsim
