// Statistics toolkit used by the analysis pipeline: streaming moments,
// sample sets with exact quantiles, fixed-bin histograms and empirical CDFs.
// This is the NumPy/pandas replacement for the paper's post-processing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ethsim {

// Streaming count/mean/variance/min/max (Welford).
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return count_ ? mean_ * static_cast<double>(count_) : 0.0; }

  void Merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores samples and answers exact order statistics. Sorting is lazy and
// cached; Add() invalidates the cache.
class SampleSet {
 public:
  void Add(double x);
  void Reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  // q in [0,1]; linear interpolation between closest ranks.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  // Fraction of samples <= x (empirical CDF).
  double CdfAt(double x) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
// the first/last bin so mass is never lost (matches how the paper's Fig 1
// axis truncates at 500 ms).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }
  double BinLow(std::size_t bin) const;
  double BinHigh(std::size_t bin) const;
  double Fraction(std::size_t bin) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// A discrete empirical CDF evaluated at caller-chosen points, for rendering
// figures like the paper's Fig 4/5/7.
struct CdfPoint {
  double x = 0;
  double p = 0;
};
std::vector<CdfPoint> MakeCdf(const SampleSet& samples, std::size_t points);

}  // namespace ethsim
