#include "common/keccak.hpp"

#include <cassert>
#include <cstring>

namespace ethsim {

namespace {

constexpr int kRounds = 24;
constexpr std::size_t kRateBytes = 136;

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr std::uint64_t Rotl(std::uint64_t x, int n) {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

// Fully unrolled permutation. The looped reference version spends most of
// its time on the b[25] spill and the %5 index arithmetic; with the state in
// 25 named locals the compiler keeps the round function in registers and the
// whole permutation runs ~2x faster — which matters here because every
// block, transaction and config digest identity is keccak256(rlp(x)).
// Bit-identical to the reference implementation (the keccak test vectors
// and every tracked run digest pin this down).
void KeccakF1600(std::uint64_t a[25]) {
  std::uint64_t a00 = a[0], a01 = a[1], a02 = a[2], a03 = a[3], a04 = a[4];
  std::uint64_t a05 = a[5], a06 = a[6], a07 = a[7], a08 = a[8], a09 = a[9];
  std::uint64_t a10 = a[10], a11 = a[11], a12 = a[12], a13 = a[13],
                a14 = a[14];
  std::uint64_t a15 = a[15], a16 = a[16], a17 = a[17], a18 = a[18],
                a19 = a[19];
  std::uint64_t a20 = a[20], a21 = a[21], a22 = a[22], a23 = a[23],
                a24 = a[24];

  for (int round = 0; round < kRounds; ++round) {
    // Theta
    const std::uint64_t c0 = a00 ^ a05 ^ a10 ^ a15 ^ a20;
    const std::uint64_t c1 = a01 ^ a06 ^ a11 ^ a16 ^ a21;
    const std::uint64_t c2 = a02 ^ a07 ^ a12 ^ a17 ^ a22;
    const std::uint64_t c3 = a03 ^ a08 ^ a13 ^ a18 ^ a23;
    const std::uint64_t c4 = a04 ^ a09 ^ a14 ^ a19 ^ a24;
    const std::uint64_t d0 = c4 ^ Rotl(c1, 1);
    const std::uint64_t d1 = c0 ^ Rotl(c2, 1);
    const std::uint64_t d2 = c1 ^ Rotl(c3, 1);
    const std::uint64_t d3 = c2 ^ Rotl(c4, 1);
    const std::uint64_t d4 = c3 ^ Rotl(c0, 1);
    a00 ^= d0; a05 ^= d0; a10 ^= d0; a15 ^= d0; a20 ^= d0;
    a01 ^= d1; a06 ^= d1; a11 ^= d1; a16 ^= d1; a21 ^= d1;
    a02 ^= d2; a07 ^= d2; a12 ^= d2; a17 ^= d2; a22 ^= d2;
    a03 ^= d3; a08 ^= d3; a13 ^= d3; a18 ^= d3; a23 ^= d3;
    a04 ^= d4; a09 ^= d4; a14 ^= d4; a19 ^= d4; a24 ^= d4;

    // Rho + Pi: b[y + 5*((2x+3y)%5)] = rotl(a[x+5y], r[x+5y])
    const std::uint64_t b00 = a00;
    const std::uint64_t b10 = Rotl(a01, 1);
    const std::uint64_t b20 = Rotl(a02, 62);
    const std::uint64_t b05 = Rotl(a03, 28);
    const std::uint64_t b15 = Rotl(a04, 27);
    const std::uint64_t b16 = Rotl(a05, 36);
    const std::uint64_t b01 = Rotl(a06, 44);
    const std::uint64_t b11 = Rotl(a07, 6);
    const std::uint64_t b21 = Rotl(a08, 55);
    const std::uint64_t b06 = Rotl(a09, 20);
    const std::uint64_t b07 = Rotl(a10, 3);
    const std::uint64_t b17 = Rotl(a11, 10);
    const std::uint64_t b02 = Rotl(a12, 43);
    const std::uint64_t b12 = Rotl(a13, 25);
    const std::uint64_t b22 = Rotl(a14, 39);
    const std::uint64_t b23 = Rotl(a15, 41);
    const std::uint64_t b08 = Rotl(a16, 45);
    const std::uint64_t b18 = Rotl(a17, 15);
    const std::uint64_t b03 = Rotl(a18, 21);
    const std::uint64_t b13 = Rotl(a19, 8);
    const std::uint64_t b14 = Rotl(a20, 18);
    const std::uint64_t b24 = Rotl(a21, 2);
    const std::uint64_t b09 = Rotl(a22, 61);
    const std::uint64_t b19 = Rotl(a23, 56);
    const std::uint64_t b04 = Rotl(a24, 14);

    // Chi + Iota
    a00 = b00 ^ (~b01 & b02) ^ kRoundConstants[round];
    a01 = b01 ^ (~b02 & b03);
    a02 = b02 ^ (~b03 & b04);
    a03 = b03 ^ (~b04 & b00);
    a04 = b04 ^ (~b00 & b01);
    a05 = b05 ^ (~b06 & b07);
    a06 = b06 ^ (~b07 & b08);
    a07 = b07 ^ (~b08 & b09);
    a08 = b08 ^ (~b09 & b05);
    a09 = b09 ^ (~b05 & b06);
    a10 = b10 ^ (~b11 & b12);
    a11 = b11 ^ (~b12 & b13);
    a12 = b12 ^ (~b13 & b14);
    a13 = b13 ^ (~b14 & b10);
    a14 = b14 ^ (~b10 & b11);
    a15 = b15 ^ (~b16 & b17);
    a16 = b16 ^ (~b17 & b18);
    a17 = b17 ^ (~b18 & b19);
    a18 = b18 ^ (~b19 & b15);
    a19 = b19 ^ (~b15 & b16);
    a20 = b20 ^ (~b21 & b22);
    a21 = b21 ^ (~b22 & b23);
    a22 = b22 ^ (~b23 & b24);
    a23 = b23 ^ (~b24 & b20);
    a24 = b24 ^ (~b20 & b21);
  }

  a[0] = a00; a[1] = a01; a[2] = a02; a[3] = a03; a[4] = a04;
  a[5] = a05; a[6] = a06; a[7] = a07; a[8] = a08; a[9] = a09;
  a[10] = a10; a[11] = a11; a[12] = a12; a[13] = a13; a[14] = a14;
  a[15] = a15; a[16] = a16; a[17] = a17; a[18] = a18; a[19] = a19;
  a[20] = a20; a[21] = a21; a[22] = a22; a[23] = a23; a[24] = a24;
}

}  // namespace

void Keccak256::AbsorbBlock(const std::uint8_t* block) {
  for (std::size_t i = 0; i < kRateBytes / 8; ++i) {
    std::uint64_t lane;
    std::memcpy(&lane, block + 8 * i, 8);  // little-endian host assumed (x86)
    state_[i] ^= lane;
  }
  KeccakF1600(state_);
}

void Keccak256::Update(std::span<const std::uint8_t> data) {
  assert(!finalized_);
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kRateBytes - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == kRateBytes) {
      AbsorbBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (data.size() - offset >= kRateBytes) {
    AbsorbBlock(data.data() + offset);
    offset += kRateBytes;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Keccak256::Update(std::string_view data) {
  Update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Hash32 Keccak256::Final() {
  assert(!finalized_);
  finalized_ = true;
  // Original Keccak multi-rate padding: 0x01 ... 0x80.
  std::memset(buffer_ + buffered_, 0, kRateBytes - buffered_);
  buffer_[buffered_] = 0x01;
  buffer_[kRateBytes - 1] |= 0x80;
  AbsorbBlock(buffer_);

  Hash32 out;
  std::memcpy(out.bytes.data(), state_, 32);
  return out;
}

void Keccak256::Reset() {
  std::memset(state_, 0, sizeof(state_));
  buffered_ = 0;
  finalized_ = false;
}

Hash32 Keccak256Of(std::span<const std::uint8_t> data) {
  Keccak256 h;
  h.Update(data);
  return h.Final();
}

Hash32 Keccak256Of(std::string_view data) {
  Keccak256 h;
  h.Update(data);
  return h.Final();
}

}  // namespace ethsim
