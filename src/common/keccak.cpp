#include "common/keccak.hpp"

#include <cassert>
#include <cstring>

namespace ethsim {

namespace {

constexpr int kRounds = 24;
constexpr std::size_t kRateBytes = 136;

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr int kRotations[25] = {0,  1,  62, 28, 27, 36, 44, 6,  55, 20, 3,  10, 43,
                                25, 39, 41, 45, 15, 21, 8,  18, 2,  61, 56, 14};

constexpr std::uint64_t Rotl(std::uint64_t x, int n) {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

void KeccakF1600(std::uint64_t a[25]) {
  for (int round = 0; round < kRounds; ++round) {
    // Theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    std::uint64_t d[5];
    for (int x = 0; x < 5; ++x) d[x] = c[(x + 4) % 5] ^ Rotl(c[(x + 1) % 5], 1);
    for (int i = 0; i < 25; ++i) a[i] ^= d[i % 5];

    // Rho + Pi
    std::uint64_t b[25];
    for (int x = 0; x < 5; ++x)
      for (int y = 0; y < 5; ++y) {
        const int src = x + 5 * y;
        const int dst = y + 5 * ((2 * x + 3 * y) % 5);
        b[dst] = Rotl(a[src], kRotations[src]);
      }

    // Chi
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 5; ++x)
        a[x + 5 * y] =
            b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);

    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

void Keccak256::AbsorbBlock(const std::uint8_t* block) {
  for (std::size_t i = 0; i < kRateBytes / 8; ++i) {
    std::uint64_t lane;
    std::memcpy(&lane, block + 8 * i, 8);  // little-endian host assumed (x86)
    state_[i] ^= lane;
  }
  KeccakF1600(state_);
}

void Keccak256::Update(std::span<const std::uint8_t> data) {
  assert(!finalized_);
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(kRateBytes - buffered_, data.size());
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == kRateBytes) {
      AbsorbBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (data.size() - offset >= kRateBytes) {
    AbsorbBlock(data.data() + offset);
    offset += kRateBytes;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Keccak256::Update(std::string_view data) {
  Update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Hash32 Keccak256::Final() {
  assert(!finalized_);
  finalized_ = true;
  // Original Keccak multi-rate padding: 0x01 ... 0x80.
  std::memset(buffer_ + buffered_, 0, kRateBytes - buffered_);
  buffer_[buffered_] = 0x01;
  buffer_[kRateBytes - 1] |= 0x80;
  AbsorbBlock(buffer_);

  Hash32 out;
  std::memcpy(out.bytes.data(), state_, 32);
  return out;
}

void Keccak256::Reset() {
  std::memset(state_, 0, sizeof(state_));
  buffered_ = 0;
  finalized_ = false;
}

Hash32 Keccak256Of(std::span<const std::uint8_t> data) {
  Keccak256 h;
  h.Update(data);
  return h.Final();
}

Hash32 Keccak256Of(std::string_view data) {
  Keccak256 h;
  h.Update(data);
  return h.Final();
}

}  // namespace ethsim
