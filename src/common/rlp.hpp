// Recursive Length Prefix (RLP) — Ethereum's canonical serialization.
// Blocks and transactions in this simulator are hashed as keccak256(rlp(x)),
// matching the real protocol's identity scheme.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace ethsim::rlp {

using Bytes = std::vector<std::uint8_t>;

// Streaming RLP encoder. Lists are written via BeginList/EndList pairs;
// nesting is supported.
class Encoder {
 public:
  // Scalars are encoded as big-endian byte strings with no leading zeros
  // (0 encodes as the empty string), per the yellow paper.
  void WriteUint(std::uint64_t value);
  void WriteBytes(std::span<const std::uint8_t> data);
  void WriteString(std::string_view s);
  template <std::size_t N>
  void WriteFixed(const FixedBytes<N>& b) {
    WriteBytes(std::span<const std::uint8_t>(b.bytes.data(), N));
  }

  void BeginList();
  void EndList();

  // Finishes encoding and returns the buffer. All lists must be closed.
  Bytes Take();

 private:
  void AppendLength(std::size_t length, std::uint8_t offset);

  Bytes out_;
  std::vector<std::size_t> list_starts_;
};

// A decoded RLP item: either a byte string or a list of items.
struct Item {
  bool is_list = false;
  Bytes data;               // valid when !is_list
  std::vector<Item> items;  // valid when is_list

  std::uint64_t AsUint() const;
  template <std::size_t N>
  FixedBytes<N> AsFixed() const {
    FixedBytes<N> v;
    if (data.size() == N)
      for (std::size_t i = 0; i < N; ++i) v.bytes[i] = data[i];
    return v;
  }
};

// Decodes a single top-level RLP item. Returns false on malformed input or
// trailing bytes.
bool Decode(std::span<const std::uint8_t> input, Item& out);

// Convenience one-shot encoders.
Bytes EncodeUint(std::uint64_t value);
Bytes EncodeString(std::string_view s);

}  // namespace ethsim::rlp
