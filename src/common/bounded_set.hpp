// FIFO-bounded hash set, the idiom Geth uses for per-peer knownTxs /
// knownBlocks caches: constant memory, oldest entries evicted first.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>

namespace ethsim {

template <typename T>
class BoundedSet {
 public:
  explicit BoundedSet(std::size_t capacity) : capacity_(capacity) {}

  // Inserts; returns false if already present. Evicts the oldest entry when
  // over capacity.
  bool Insert(const T& value) {
    if (!set_.insert(value).second) return false;
    order_.push_back(value);
    if (order_.size() > capacity_) {
      set_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

  bool Contains(const T& value) const { return set_.contains(value); }
  std::size_t size() const { return set_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::unordered_set<T> set_;
  std::deque<T> order_;
};

}  // namespace ethsim
