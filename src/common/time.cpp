#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace ethsim {

std::string FormatDuration(Duration d) {
  char buf[64];
  const std::int64_t us = d.micros();
  const std::int64_t abs_us = us < 0 ? -us : us;
  const char* sign = us < 0 ? "-" : "";
  if (abs_us < 1000) {
    std::snprintf(buf, sizeof(buf), "%s%ldus", sign, static_cast<long>(abs_us));
  } else if (abs_us < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%s%.1fms", sign,
                  static_cast<double>(abs_us) / 1e3);
  } else if (abs_us < 3'600'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%s%.1fs", sign,
                  static_cast<double>(abs_us) / 1e6);
  } else {
    const std::int64_t total_s = abs_us / 1'000'000;
    std::snprintf(buf, sizeof(buf), "%s%ldh%02ldm%02lds", sign,
                  static_cast<long>(total_s / 3600),
                  static_cast<long>((total_s % 3600) / 60),
                  static_cast<long>(total_s % 60));
  }
  return buf;
}

}  // namespace ethsim
