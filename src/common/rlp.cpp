#include "common/rlp.hpp"

#include <cassert>

namespace ethsim::rlp {

namespace {

// Minimal big-endian representation of value (empty for 0).
Bytes BigEndianTrimmed(std::uint64_t value) {
  Bytes out;
  while (value != 0) {
    out.insert(out.begin(), static_cast<std::uint8_t>(value & 0xff));
    value >>= 8;
  }
  return out;
}

void AppendStringHeader(Bytes& out, std::size_t length) {
  if (length <= 55) {
    out.push_back(static_cast<std::uint8_t>(0x80 + length));
  } else {
    const Bytes len_be = BigEndianTrimmed(length);
    out.push_back(static_cast<std::uint8_t>(0xb7 + len_be.size()));
    out.insert(out.end(), len_be.begin(), len_be.end());
  }
}

}  // namespace

void Encoder::WriteUint(std::uint64_t value) {
  const Bytes be = BigEndianTrimmed(value);
  WriteBytes(be);
}

void Encoder::WriteBytes(std::span<const std::uint8_t> data) {
  if (data.size() == 1 && data[0] < 0x80) {
    out_.push_back(data[0]);
    return;
  }
  AppendStringHeader(out_, data.size());
  out_.insert(out_.end(), data.begin(), data.end());
}

void Encoder::WriteString(std::string_view s) {
  WriteBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Encoder::BeginList() { list_starts_.push_back(out_.size()); }

void Encoder::EndList() {
  assert(!list_starts_.empty());
  const std::size_t start = list_starts_.back();
  list_starts_.pop_back();
  const std::size_t payload = out_.size() - start;

  Bytes header;
  if (payload <= 55) {
    header.push_back(static_cast<std::uint8_t>(0xc0 + payload));
  } else {
    const Bytes len_be = BigEndianTrimmed(payload);
    header.push_back(static_cast<std::uint8_t>(0xf7 + len_be.size()));
    header.insert(header.end(), len_be.begin(), len_be.end());
  }
  out_.insert(out_.begin() + static_cast<std::ptrdiff_t>(start), header.begin(),
              header.end());
}

Bytes Encoder::Take() {
  assert(list_starts_.empty());
  return std::move(out_);
}

std::uint64_t Item::AsUint() const {
  std::uint64_t v = 0;
  for (auto b : data) v = (v << 8) | b;
  return v;
}

namespace {

// Parses one item starting at input[pos]; advances pos past it.
bool DecodeItem(std::span<const std::uint8_t> input, std::size_t& pos, Item& out,
                int depth) {
  if (depth > 64) return false;  // guard against adversarial nesting
  if (pos >= input.size()) return false;
  const std::uint8_t b = input[pos];

  auto read_length = [&](std::size_t len_of_len, std::size_t& len) -> bool {
    if (pos + 1 + len_of_len > input.size()) return false;
    len = 0;
    for (std::size_t i = 0; i < len_of_len; ++i) {
      if (len > (std::size_t{1} << 48)) return false;
      len = (len << 8) | input[pos + 1 + i];
    }
    pos += 1 + len_of_len;
    return true;
  };

  if (b < 0x80) {  // single byte
    out.is_list = false;
    out.data = {b};
    ++pos;
    return true;
  }
  if (b <= 0xb7) {  // short string
    const std::size_t len = b - 0x80;
    if (pos + 1 + len > input.size()) return false;
    out.is_list = false;
    out.data.assign(input.begin() + static_cast<std::ptrdiff_t>(pos + 1),
                    input.begin() + static_cast<std::ptrdiff_t>(pos + 1 + len));
    pos += 1 + len;
    return true;
  }
  if (b <= 0xbf) {  // long string
    std::size_t len = 0;
    if (!read_length(b - 0xb7, len)) return false;
    if (pos + len > input.size()) return false;
    out.is_list = false;
    out.data.assign(input.begin() + static_cast<std::ptrdiff_t>(pos),
                    input.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
    return true;
  }

  // List.
  std::size_t payload_len = 0;
  if (b <= 0xf7) {
    payload_len = b - 0xc0;
    ++pos;
  } else {
    if (!read_length(b - 0xf7, payload_len)) return false;
  }
  if (pos + payload_len > input.size()) return false;

  out.is_list = true;
  out.items.clear();
  const std::size_t end = pos + payload_len;
  while (pos < end) {
    Item child;
    if (!DecodeItem(input, pos, child, depth + 1)) return false;
    if (pos > end) return false;
    out.items.push_back(std::move(child));
  }
  return pos == end;
}

}  // namespace

bool Decode(std::span<const std::uint8_t> input, Item& out) {
  std::size_t pos = 0;
  if (!DecodeItem(input, pos, out, 0)) return false;
  return pos == input.size();
}

Bytes EncodeUint(std::uint64_t value) {
  Encoder e;
  e.WriteUint(value);
  return e.Take();
}

Bytes EncodeString(std::string_view s) {
  Encoder e;
  e.WriteString(s);
  return e.Take();
}

}  // namespace ethsim::rlp
