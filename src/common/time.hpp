// Simulation time. One tick = 1 microsecond, stored in int64 (≈292k years of
// range). TimePoint and Duration are distinct strong types so that "when"
// and "how long" cannot be mixed up silently.
#pragma once

#include <cstdint>
#include <string>

namespace ethsim {

class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration Micros(std::int64_t us) { return Duration{us}; }
  static constexpr Duration Millis(std::int64_t ms) { return Duration{ms * 1000}; }
  static constexpr Duration Seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Duration Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr Duration Hours(double h) { return Seconds(h * 3600.0); }

  constexpr std::int64_t micros() const { return us_; }
  constexpr double millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator*(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) * f)};
  }
  constexpr Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }

 private:
  explicit constexpr Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint FromMicros(std::int64_t us) { return TimePoint{us}; }

  constexpr std::int64_t micros() const { return us_; }
  constexpr double millis() const { return static_cast<double>(us_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const TimePoint&) const = default;
  constexpr TimePoint operator+(Duration d) const {
    return TimePoint{us_ + d.micros()};
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint{us_ - d.micros()};
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::Micros(us_ - o.us_);
  }

 private:
  explicit constexpr TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// "1h02m03s", "213ms", "74.3ms" — compact form for reports.
std::string FormatDuration(Duration d);

namespace literals {
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::Millis(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::Seconds(static_cast<double>(v));
}
constexpr Duration operator""_min(unsigned long long v) {
  return Duration::Minutes(static_cast<double>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::Micros(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace ethsim
