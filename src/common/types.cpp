#include "common/types.hpp"

namespace ethsim {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (auto b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

bool FromHex(std::string_view hex, std::span<std::uint8_t> out) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X'))
    hex.remove_prefix(2);
  if (hex.size() != out.size() * 2) return false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const int hi = HexNibble(hex[2 * i]);
    const int lo = HexNibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return true;
}

}  // namespace ethsim
