#include "common/render.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ethsim::render {

namespace {

std::string Repeat(char c, int n) {
  return std::string(static_cast<std::size_t>(std::max(0, n)), c);
}

char SeriesGlyph(std::size_t i) {
  constexpr char glyphs[] = "123456789abcdefghijk";
  return glyphs[i % (sizeof(glyphs) - 1)];
}

}  // namespace

std::string Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Percent(double fraction, int decimals) {
  return Fmt(fraction * 100.0, decimals) + "%";
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c] << Repeat(' ', static_cast<int>(widths[c] - cells[c].size()))
         << ' ';
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << '|' << Repeat('-', static_cast<int>(widths[c]) + 2);
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string BarChart(const std::vector<Bar>& bars, int width) {
  double max_v = 0;
  std::size_t label_w = 0;
  for (const auto& b : bars) {
    max_v = std::max(max_v, b.value);
    label_w = std::max(label_w, b.label.size());
  }
  if (max_v <= 0) max_v = 1;

  std::ostringstream os;
  for (const auto& b : bars) {
    const int len = static_cast<int>(std::lround(b.value / max_v * width));
    os << b.label << Repeat(' ', static_cast<int>(label_w - b.label.size())) << " |"
       << Repeat('#', len) << ' ' << b.annotation << '\n';
  }
  return os.str();
}

std::string StackedBarChart(const std::vector<StackedBar>& bars,
                            const std::vector<std::string>& legend, int width) {
  std::size_t label_w = 0;
  for (const auto& b : bars) label_w = std::max(label_w, b.label.size());

  std::ostringstream os;
  os << "legend:";
  for (std::size_t i = 0; i < legend.size(); ++i)
    os << ' ' << SeriesGlyph(i) << '=' << legend[i];
  os << '\n';

  for (const auto& b : bars) {
    double total = 0;
    for (double s : b.shares) total += s;
    if (total <= 0) total = 1;
    os << b.label << Repeat(' ', static_cast<int>(label_w - b.label.size())) << " |";
    int used = 0;
    for (std::size_t i = 0; i < b.shares.size(); ++i) {
      int len = static_cast<int>(std::lround(b.shares[i] / total * width));
      if (i + 1 == b.shares.size()) len = width - used;  // fill rounding gap
      len = std::max(0, std::min(len, width - used));
      os << Repeat(SeriesGlyph(i), len);
      used += len;
    }
    os << "|\n";
  }
  return os.str();
}

std::string HistogramChart(const Histogram& hist, const std::string& x_label,
                           int height) {
  double max_frac = 0;
  for (std::size_t b = 0; b < hist.bins(); ++b)
    max_frac = std::max(max_frac, hist.Fraction(b));
  if (max_frac <= 0) max_frac = 1;

  std::ostringstream os;
  for (int row = height; row >= 1; --row) {
    const double threshold = max_frac * row / height;
    char ylab[32];
    std::snprintf(ylab, sizeof(ylab), "%5.1f%% ", threshold * 100.0);
    os << ylab << '|';
    for (std::size_t b = 0; b < hist.bins(); ++b)
      os << (hist.Fraction(b) >= threshold - 1e-12 ? '#' : ' ');
    os << '\n';
  }
  os << "       +" << Repeat('-', static_cast<int>(hist.bins())) << "\n";
  char xl[128];
  std::snprintf(xl, sizeof(xl), "        %.0f ... %.0f  (%s)\n", hist.BinLow(0),
                hist.BinHigh(hist.bins() - 1), x_label.c_str());
  os << xl;
  return os.str();
}

std::string CdfChart(const std::vector<Series>& series, const std::string& x_label,
                     int width, int height, bool log_x) {
  double min_x = 1e300, max_x = -1e300;
  for (const auto& s : series)
    for (const auto& p : s.points) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
    }
  if (min_x >= max_x) return "(empty cdf)\n";
  if (log_x) min_x = std::max(min_x, 1e-9);

  auto x_to_col = [&](double x) -> int {
    double t;
    if (log_x) {
      x = std::max(x, min_x);
      t = (std::log(x) - std::log(min_x)) / (std::log(max_x) - std::log(min_x));
    } else {
      t = (x - min_x) / (max_x - min_x);
    }
    return std::clamp(static_cast<int>(std::lround(t * (width - 1))), 0, width - 1);
  };

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = SeriesGlyph(si);
    for (const auto& p : series[si].points) {
      const int col = x_to_col(p.x);
      const int row =
          std::clamp(static_cast<int>(std::lround(p.p * (height - 1))), 0, height - 1);
      grid[static_cast<std::size_t>(height - 1 - row)][static_cast<std::size_t>(col)] =
          glyph;
    }
  }

  std::ostringstream os;
  os << "legend:";
  for (std::size_t i = 0; i < series.size(); ++i)
    os << ' ' << SeriesGlyph(i) << '=' << series[i].name;
  os << '\n';
  for (int row = 0; row < height; ++row) {
    const double p = 1.0 - static_cast<double>(row) / (height - 1);
    char ylab[16];
    std::snprintf(ylab, sizeof(ylab), "%4.0f%% ", p * 100.0);
    os << ylab << '|' << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << "      +" << Repeat('-', width) << '\n';
  char xl[160];
  std::snprintf(xl, sizeof(xl), "       %.0f ... %.0f (%s%s)\n", min_x, max_x,
                x_label.c_str(), log_x ? ", log-x" : "");
  os << xl;
  return os.str();
}

}  // namespace ethsim::render
