// Keccak-256 as used by Ethereum (original Keccak padding 0x01, not the
// NIST SHA-3 0x06 variant). Block and transaction hashes in this simulator
// are real keccak256(rlp(...)) digests, matching Geth.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/types.hpp"

namespace ethsim {

// Incremental Keccak-256 hasher.
class Keccak256 {
 public:
  Keccak256() = default;

  void Update(std::span<const std::uint8_t> data);
  void Update(std::string_view data);

  // Finalizes and returns the digest. The hasher must not be reused after
  // calling Final() without Reset().
  Hash32 Final();

  void Reset();

 private:
  void AbsorbBlock(const std::uint8_t* block);

  std::uint64_t state_[25] = {};
  std::uint8_t buffer_[136] = {};  // rate = 1088 bits = 136 bytes
  std::size_t buffered_ = 0;
  bool finalized_ = false;
};

// One-shot helpers.
Hash32 Keccak256Of(std::span<const std::uint8_t> data);
Hash32 Keccak256Of(std::string_view data);

}  // namespace ethsim
