// Fundamental value types shared across the simulator: fixed-size hashes,
// addresses, and hex formatting helpers.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <string_view>

namespace ethsim {

// Fixed-size big-endian byte array used for hashes, node ids and addresses.
template <std::size_t N>
struct FixedBytes {
  std::array<std::uint8_t, N> bytes{};

  constexpr FixedBytes() = default;
  explicit constexpr FixedBytes(const std::array<std::uint8_t, N>& b) : bytes(b) {}

  static constexpr std::size_t size() { return N; }
  std::uint8_t* data() { return bytes.data(); }
  const std::uint8_t* data() const { return bytes.data(); }

  auto operator<=>(const FixedBytes&) const = default;

  bool is_zero() const {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }

  // First 8 bytes interpreted as a big-endian integer; handy for cheap
  // bucketing and deterministic tie-breaking.
  std::uint64_t prefix_u64() const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8 && i < N; ++i) v = (v << 8) | bytes[i];
    return v;
  }
};

using Hash32 = FixedBytes<32>;
using Address = FixedBytes<20>;

// Lowercase hex with no 0x prefix.
std::string ToHex(std::span<const std::uint8_t> data);

template <std::size_t N>
std::string ToHex(const FixedBytes<N>& b) {
  return ToHex(std::span<const std::uint8_t>(b.bytes.data(), N));
}

// Parses hex (optionally 0x-prefixed) into out; returns false on bad input
// or length mismatch.
bool FromHex(std::string_view hex, std::span<std::uint8_t> out);

template <std::size_t N>
FixedBytes<N> FixedBytesFromHex(std::string_view hex) {
  FixedBytes<N> v;
  FromHex(hex, std::span<std::uint8_t>(v.bytes.data(), N));
  return v;
}

// Short human-readable form (first 4 bytes): "a1b2c3d4".
template <std::size_t N>
std::string ShortHex(const FixedBytes<N>& b) {
  return ToHex(std::span<const std::uint8_t>(b.bytes.data(), N < 4 ? N : 4));
}

}  // namespace ethsim

namespace std {
template <std::size_t N>
struct hash<ethsim::FixedBytes<N>> {
  std::size_t operator()(const ethsim::FixedBytes<N>& v) const noexcept {
    // Hashes/ids in this codebase are outputs of Keccak or a PRNG, so the
    // first word is already uniformly distributed.
    std::uint64_t h;
    static_assert(N >= 8);
    std::memcpy(&h, v.bytes.data(), sizeof(h));
    return static_cast<std::size_t>(h);
  }
};
}  // namespace std
