#include "common/random.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ethsim {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over a string, for deriving named substreams.
std::uint64_t HashName(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::Fork(std::string_view name) const { return Fork(HashName(name)); }

Rng Rng::Fork(std::uint64_t key) const {
  // Mix the original seed with the key rather than the current state so that
  // forking is insensitive to how many draws the parent has made.
  std::uint64_t mixed = seed_ ^ (key * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  return Rng{SplitMix64(mixed)};
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift with rejection.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::NextBool(double probability_true) {
  return NextDouble() < probability_true;
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(NextNormal(mu, sigma));
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  assert(n > 0);
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (auto i : large) prob_[i] = 1.0;
  for (auto i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasSampler::Sample(Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.NextBounded(prob_.size()));
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace ethsim
