// Deterministic randomness. Every stochastic component in the simulator owns
// an Rng forked by name from the experiment's master seed, so runs are a pure
// function of (config, seed) and independent of evaluation order elsewhere.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ethsim {

// xoshiro256++ seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  std::uint64_t Next();

  // Derives an independent stream keyed by (this stream's seed, name).
  Rng Fork(std::string_view name) const;
  Rng Fork(std::uint64_t key) const;

  // Uniform in [0, 1).
  double NextDouble();
  // Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound);
  // Uniform in [lo, hi).
  double NextRange(double lo, double hi);
  // Exponential with the given mean (mean = 1/lambda).
  double NextExponential(double mean);
  // Standard normal via Box-Muller (no cached spare; stateless per call pair).
  double NextNormal(double mean, double stddev);
  // Bernoulli.
  bool NextBool(double probability_true);
  // Log-normal parameterized by the underlying normal's mu/sigma.
  double NextLogNormal(double mu, double sigma);

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;
};

// Samples indices with fixed weights in O(1) per draw (Vose alias method).
// Used for picking the winning miner of each block from hashrate shares.
class AliasSampler {
 public:
  // Weights must be non-negative with a positive sum.
  explicit AliasSampler(const std::vector<double>& weights);

  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace ethsim
