// The paper's §II deployment in miniature: four instrumented vantage nodes
// watch the overlay for a few simulated hours, then the full multi-vantage
// analysis pipeline reproduces the geographic findings (Figs 1-3) and the
// network-efficiency numbers in one go.
//
//   $ ./geo_study [hours] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/report.hpp"
#include "core/experiment.hpp"

using namespace ethsim;

int main(int argc, char** argv) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(120);
  cfg.duration = Duration::Hours(argc > 1 ? std::atof(argv[1]) : 2.0);
  cfg.seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;
  cfg.workload.rate_per_sec = 0.3;

  std::printf("deploying 4 vantage observers (NA, EA, WE, CE) over a %zu-node "
              "overlay,\n%zu mining pools, %.1f simulated hours...\n\n",
              cfg.peer_nodes, cfg.pools.size(), cfg.duration.seconds() / 3600);

  core::Experiment exp{cfg};
  exp.Run();

  analysis::StudyInputs inputs;
  for (const auto& obs : exp.observers()) inputs.observers.push_back(obs.get());
  inputs.minted = &exp.minted();
  inputs.pools = &exp.config().pools;
  inputs.reference = &exp.reference_tree();

  const auto blocks = analysis::BlockPropagationDelays(inputs.observers);
  const auto txs = analysis::TxPropagationDelays(inputs.observers);
  const auto tx_rows = analysis::PerVantageTxDelay(inputs.observers);
  std::printf("%s\n", analysis::RenderFig1(blocks, txs, tx_rows).c_str());

  std::printf("%s\n",
              analysis::RenderFig2(
                  analysis::FirstObservationShares(inputs.observers)).c_str());

  std::printf("%s\n",
              analysis::RenderFig3(analysis::PoolFirstObservation(inputs))
                  .c_str());
  return 0;
}
