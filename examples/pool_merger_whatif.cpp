// What-if: two top pools merge (or quietly collude). §III-D warns that the
// 12-block rule already creaks at 25.9% concentration; this example runs the
// finality math and month-scale winner processes for the 2019 roster vs a
// merged Ethermine+Sparkpool (48.2%) — the scenario the paper's §V says
// protocol designers must treat as a first-class threat.
//
//   $ ./pool_merger_whatif [months=1]
#include <cstdio>
#include <cstdlib>

#include "analysis/report.hpp"
#include "analysis/security.hpp"
#include "common/render.hpp"

using namespace ethsim;

namespace {

std::vector<miner::PoolSpec> MergedRoster() {
  auto pools = miner::PaperPools();
  // Fold Sparkpool (index 1) into Ethermine (index 0).
  pools[0].name = "Ethermine+Sparkpool";
  pools[0].coinbase = miner::PoolCoinbase("Ethermine+Sparkpool");
  pools[0].hashrate_share += pools[1].hashrate_share;
  pools.erase(pools.begin() + 1);
  return pools;
}

void Report(const std::vector<miner::PoolSpec>& pools, const char* title,
            std::size_t months) {
  std::printf("--- %s ---\n", title);
  const double top = pools[0].hashrate_share;
  std::printf("top pool: %s at %.1f%%\n", pools[0].name.c_str(), top * 100);

  render::Table t{{"k", "P(k-run)", "expected / month", "censorship window"}};
  for (std::size_t k : {8, 12, 20, 30}) {
    t.AddRow({std::to_string(k),
              render::Fmt(analysis::RunProbability(top, k), 6),
              render::Fmt(analysis::ExpectedRuns(top, k, 201'086), 3),
              render::Fmt(static_cast<double>(k) * 13.3, 0) + " s"});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf("confirmations for <0.01 expected breaks/month: %zu\n",
              analysis::RequiredConfirmations(top, 0.01));

  // Empirical check: sample the winner process for `months` months.
  const auto winners =
      analysis::SampleWinners(pools, months * 201'086, Rng{99});
  const auto sequences = analysis::SequencesFromWinners(winners, pools);
  std::printf("sampled %zu month(s): top pool max run %zu, runs>=12: %zu\n\n",
              months, sequences.pools[0].max_run,
              sequences.pools[0].RunsAtLeast(12));
}

}  // namespace

int main(int argc, char** argv) {
  const auto months =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : std::size_t{1};

  std::printf("The 12-block rule under pool concentration (SIII-D / SV):\n\n");
  Report(miner::PaperPools(), "2019 roster (as measured by the paper)", months);
  Report(MergedRoster(), "what-if: Ethermine + Sparkpool merge (48.2%)", months);

  std::printf(
      "At 48%% a 12-block run is an every-few-days event: the merged pool\n"
      "can double-spend against any 12-confirmation acceptor and censor\n"
      "transactions for minutes at will. The paper's conclusion — that\n"
      "protocol analyses must model pools, not flat miner populations —\n"
      "follows directly.\n");
  return 0;
}
