// Quickstart: build a small geo-distributed Ethereum overlay with the
// paper's mining-pool roster, run it for half a simulated hour, and print
// what the four vantage observers saw.
//
//   $ ./quickstart [minutes] [seed]
//
// Telemetry (optional, zero perturbation — same blocks either way):
//   $ ETHSIM_METRICS=1 ETHSIM_TRACE=block,mine ETHSIM_PROFILE=1 \
//     ETHSIM_PROVENANCE=1 ETHSIM_TELEMETRY_DIR=out ./quickstart
// writes out/metrics.jsonl, out/trace.json (load it in
// https://ui.perfetto.dev), out/profile.jsonl, out/provenance.bin (query it
// with ethsim_inspect) and out/manifest.json.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/geo.hpp"
#include "analysis/propagation.hpp"
#include "core/experiment.hpp"
#include "core/provenance.hpp"

using namespace ethsim;

int main(int argc, char** argv) {
  // 1. Configure. presets::SmallStudy gives a laptop-sized network with the
  //    paper's four vantages (NA, EA, WE, CE) and Fig 3 pool roster.
  core::ExperimentConfig cfg = core::presets::SmallStudy(/*nodes=*/80);
  cfg.duration = Duration::Minutes(argc > 1 ? std::atof(argv[1]) : 30.0);
  cfg.seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;
  cfg.workload.rate_per_sec = 0.5;  // transactions submitted network-wide
  cfg.telemetry = obs::TelemetryConfig::FromEnv();

  // 2. Run. The experiment wires the overlay, starts the PoW race and the
  //    transaction workload, and collects observer logs.
  core::Experiment exp{cfg};
  exp.Run();

  // 3. Inspect. Observer logs + the mint catalog feed the analysis library.
  std::printf("simulated %s: %zu blocks mined, head now at #%llu\n",
              FormatDuration(cfg.duration).c_str(), exp.minted().size(),
              static_cast<unsigned long long>(
                  exp.reference_tree().head_number()));
  std::printf("transactions submitted: %llu\n\n",
              static_cast<unsigned long long>(exp.workload().total_submitted()));

  analysis::ObserverSet observers;
  for (const auto& obs : exp.observers()) observers.push_back(obs.get());

  const auto propagation = analysis::BlockPropagationDelays(observers);
  std::printf("block propagation between vantages: median %.1f ms, p99 %.1f ms\n",
              propagation.median_ms, propagation.p99_ms);

  const auto geo = analysis::FirstObservationShares(observers);
  std::printf("first to observe new blocks:\n");
  for (std::size_t i = 0; i < geo.shares.size(); ++i) {
    const Duration offset = exp.observers()[i]->clock_offset();
    std::printf("  %-3s %5.1f%%  (clock offset %s)\n",
                geo.shares[i].vantage.c_str(), geo.shares[i].share * 100,
                FormatDuration(offset).c_str());
    // The §II caveat in action: a vantage that drew an NTP offset larger
    // than the typical propagation spread reports inflated/deflated shares.
    if (std::abs(offset.millis()) > 50.0)
      std::printf("      ^ NTP offset exceeds typical propagation spread — "
                  "this vantage's share is skewed (the paper's measurement-"
                  "error caveat)\n");
  }

  std::printf("\nEach vantage is an instrumented client (measure::Observer) "
              "whose log you can\nwalk directly:\n");
  const auto& ea = *exp.observers()[1];
  std::printf("  %s recorded %zu block messages and %zu transaction "
              "messages\n",
              ea.name().c_str(), ea.block_arrivals().size(),
              ea.tx_arrivals().size());

  // 4. Telemetry artifacts (only when any ETHSIM_* stream is enabled).
  if (exp.telemetry() != nullptr) {
    std::string dir = cfg.telemetry.output_dir;
    if (dir.empty()) dir = "quickstart-telemetry";
    std::string error;
    if (!core::WriteRunArtifacts(exp, dir, "quickstart", &error)) {
      std::fprintf(stderr, "error: telemetry artifacts: %s\n", error.c_str());
      return 1;
    }
    std::printf("\ntelemetry written to %s/ (trace.json loads in Perfetto; "
                "manifest.json pins config digest + seed)\n",
                dir.c_str());
    if (const obs::Tracer* tracer = exp.telemetry()->tracer())
      std::printf("  trace: %llu events emitted, %llu scrolled off the ring\n",
                  static_cast<unsigned long long>(tracer->emitted()),
                  static_cast<unsigned long long>(tracer->dropped()));
    if (const obs::ProvenanceRecorder* prov = exp.telemetry()->provenance())
      std::printf("  provenance: %llu relay edges, %llu invariant violations "
                  "(try: ethsim_inspect %s --block head --tree)\n",
                  static_cast<unsigned long long>(prov->edges_recorded()),
                  static_cast<unsigned long long>(prov->violations()),
                  dir.c_str());
  }
  return 0;
}
