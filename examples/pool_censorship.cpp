// Security lens (§III-D): how long can a mining pool censor transactions,
// and is the 12-block confirmation rule actually safe against today's pool
// concentration? Sweeps hypothetical pool sizes and replays month- and
// history-scale winner processes.
//
//   $ ./pool_censorship [share-percent]   (default: sweep several)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/security.hpp"
#include "core/experiment.hpp"

using namespace ethsim;

namespace {

void AnalyzeShare(double share) {
  std::printf("--- hypothetical pool at %.1f%% of network hashrate ---\n",
              share * 100);
  std::printf("  P(k consecutive blocks) and expected monthly occurrences "
              "(201,086 blocks):\n");
  for (std::size_t k : {6, 8, 9, 12, 14}) {
    const double p = analysis::RunProbability(share, k);
    std::printf("    k=%2zu  p=%.3g   expected/month=%.3g   censorship window "
                "~%.0f s\n",
                k, p, analysis::ExpectedRuns(share, k, 201'086),
                static_cast<double>(k) * 13.3);
  }
  std::printf("  confirmations needed for <0.01 expected breaks/month: %zu\n\n",
              analysis::RequiredConfirmations(share, 0.01));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    AnalyzeShare(std::atof(argv[1]) / 100.0);
    return 0;
  }

  std::printf("Ethereum's 12-block rule assumes a flat universe of small "
              "miners.\nWith 2019's pool concentration:\n\n");
  for (const double share : {0.05, 0.1269, 0.2269, 0.2532})
    AnalyzeShare(share);

  // One observed month with the real roster, as the paper measured.
  const auto pools = miner::PaperPools();
  const auto month = analysis::SequencesFromWinners(
      analysis::SampleWinners(pools, 201'086, Rng{2019}), pools);
  std::printf("%s\n", analysis::RenderFig7(month).c_str());

  const auto history = analysis::SequencesFromWinners(
      analysis::SampleWinners(pools, 7'600'000, Rng{77}), pools);
  std::printf("%s\n", analysis::RenderSecurity(month, history, 13.3).c_str());
  return 0;
}
