// Selfish-behavior laboratory (§III-C3/C5 + §V's what-if): make one pool
// progressively more aggressive about empty blocks and one-miner forks, and
// watch the platform-level damage — transaction commit delay, wasted mining
// power, and the uncle rewards the behavior captures.
//
//   $ ./selfish_behavior_lab [hours-per-run]
#include <cstdio>
#include <cstdlib>

#include "analysis/commit.hpp"
#include "analysis/empty_blocks.hpp"
#include "analysis/forks.hpp"
#include "analysis/rewards.hpp"
#include "core/experiment.hpp"

using namespace ethsim;

namespace {

struct LabResult {
  double empty_share = 0;
  double median_commit_s = 0;
  double omf_share_of_forks = 0;
  double recognized_extras = 0;
  std::size_t forked_blocks = 0;
  double subject_revenue_eth = 0;   // the selfish pool's total take
  double subject_leakage_eth = 0;   // of which one-miner uncle rewards
};

LabResult RunOnce(double empty_rate, double omf_rate, Duration duration) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(40);
  cfg.duration = duration;
  cfg.workload.rate_per_sec = 1.0;
  // Make Ethermine (pool 0) the subject of the experiment.
  cfg.pools[0].policy.empty_block_rate = empty_rate;
  cfg.pools[0].policy.one_miner_fork_same_txset_rate = omf_rate * 0.56;
  cfg.pools[0].policy.one_miner_fork_distinct_txset_rate = omf_rate * 0.44;

  core::Experiment exp{cfg};
  exp.Run();

  analysis::StudyInputs inputs;
  for (const auto& obs : exp.observers()) inputs.observers.push_back(obs.get());
  inputs.minted = &exp.minted();
  inputs.pools = &exp.config().pools;
  inputs.reference = &exp.reference_tree();

  LabResult out;
  const auto empty = analysis::EmptyBlockCensus(inputs);
  out.empty_share = empty.overall_empty_rate;
  const auto commit = analysis::TransactionCommitTimes(inputs, {12});
  if (!commit.delays_s[0].empty())
    out.median_commit_s = commit.delays_s[0].Median();
  const auto census = analysis::ComputeForkCensus(inputs);
  const auto omf = analysis::ComputeOneMinerForks(inputs, census);
  out.omf_share_of_forks = omf.share_of_all_forks;
  out.recognized_extras = omf.recognized_extra_share;
  out.forked_blocks = census.total_blocks - census.main_blocks;
  const auto revenue = analysis::ComputeRevenue(inputs);
  out.subject_revenue_eth = revenue.rows[0].total_eth;
  out.subject_leakage_eth = revenue.rows[0].one_miner_uncle_eth;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Duration per_run =
      Duration::Hours(argc > 1 ? std::atof(argv[1]) : 2.0);

  std::printf("subject: Ethermine (25.3%% hashrate). Each row is an "
              "independent %.1fh run.\n\n",
              per_run.seconds() / 3600);

  std::printf("1) Empty-block aggressiveness vs transaction commit delay\n");
  std::printf("%-12s %-14s %-18s\n", "empty rate", "empty blocks",
              "median 12-conf");
  for (const double rate : {0.0234, 0.25, 0.60}) {
    const LabResult r = RunOnce(rate, 0.012, per_run);
    char share[16];
    std::snprintf(share, sizeof(share), "%.2f%%", r.empty_share * 100);
    std::printf("%-12.2f %-14s %-18.0fs\n", rate, share, r.median_commit_s);
  }
  std::printf("(the paper warns: if dominant miners switched to empty-block "
              "mining it would\nbe disastrous — commit delays inflate as "
              "capacity vanishes)\n\n");

  std::printf("2) One-miner-fork aggressiveness vs wasted work + captured "
              "uncle rewards\n");
  std::printf("%-12s %-18s %-16s %-14s %-12s %-12s\n", "omf rate",
              "omf share of forks", "extras rewarded", "forked blocks",
              "revenue", "omf take");
  for (const double rate : {0.012, 0.10, 0.30}) {
    const LabResult r = RunOnce(0.0234, rate, per_run);
    char omf_share[16], rewarded[16];
    std::snprintf(omf_share, sizeof(omf_share), "%.1f%%",
                  r.omf_share_of_forks * 100);
    std::snprintf(rewarded, sizeof(rewarded), "%.0f%%",
                  r.recognized_extras * 100);
    std::printf("%-12.2f %-18s %-16s %-14zu %-12s %-12s\n", rate, omf_share,
                rewarded, r.forked_blocks,
                (std::to_string(static_cast<int>(r.subject_revenue_eth)) +
                 " ETH").c_str(),
                (std::to_string(static_cast<int>(r.subject_leakage_eth)) +
                 " ETH").c_str());
  }
  std::printf("(§V's proposed fix: forbid referencing uncles whose miner "
              "already has a main\nblock at the same height — it would zero "
              "out the reward column above)\n");
  return 0;
}
