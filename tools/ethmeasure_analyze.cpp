// ethmeasure_analyze — the "processing tool" of the paper's artifact
// release: loads a dataset directory written by ethmeasure_collect and
// regenerates the log-driven results (Fig 1, Fig 2, Fig 3, Table II,
// §III-A1 tx propagation) without re-running any simulation.
//
//   usage: ethmeasure_analyze <dataset-dir>
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/report.hpp"
#include "measure/dataset.hpp"
#include "miner/pool.hpp"
#include "obs/diag.hpp"
#include "sim/simulator.hpp"

using namespace ethsim;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <dataset-dir>\n", argv[0]);
    return 1;
  }

  measure::Dataset dataset;
  std::string error;
  if (!measure::ReadDataset(argv[1], dataset, &error)) {
    obs::LogError("measure", "cannot read dataset: %s", error.c_str());
    return 1;
  }
  std::printf("loaded %zu vantages, catalog of %zu blocks\n\n",
              dataset.vantages.size(), dataset.catalog.size());

  sim::Simulator dummy;  // replay observers only need the reference
  std::vector<std::unique_ptr<measure::Observer>> observers;
  analysis::ObserverSet observer_set;
  for (const auto& vantage : dataset.vantages) {
    observers.push_back(measure::ReplayObserver(vantage, dummy));
    observer_set.push_back(observers.back().get());
  }

  const auto blocks = analysis::BlockPropagationDelays(observer_set);
  const auto txs = analysis::TxPropagationDelays(observer_set);
  const auto tx_rows = analysis::PerVantageTxDelay(observer_set);
  std::printf("%s\n", analysis::RenderFig1(blocks, txs, tx_rows).c_str());

  std::printf("%s\n",
              analysis::RenderFig2(analysis::FirstObservationShares(observer_set))
                  .c_str());

  // Catalog-joined analysis: per-pool first observation.
  const auto pools = miner::PaperPools();
  chain::BlockArena arena;  // owns the reconstructed catalog blocks
  const auto minted =
      measure::ReconstructMintRecords(arena, dataset.catalog, pools);
  if (!minted.empty()) {
    analysis::StudyInputs inputs;
    inputs.observers = observer_set;
    inputs.minted = &minted;
    inputs.pools = &pools;
    std::printf("%s\n",
                analysis::RenderFig3(analysis::PoolFirstObservation(inputs))
                    .c_str());
  }

  // Redundancy per vantage (meaningful for default-peer-count nodes).
  for (const auto* obs : observer_set) {
    const auto redundancy = analysis::BlockReceptionRedundancy(*obs);
    std::printf("redundancy at %s: announcements %.2f, whole blocks %.2f, "
                "combined %.2f (over %zu blocks)\n",
                obs->name().c_str(), redundancy.announcements.mean,
                redundancy.whole_blocks.mean, redundancy.combined.mean,
                redundancy.blocks);
  }
  return 0;
}
