// ethsim_inspect: query tool over a run directory's binary artifacts.
//
// A run executed with ETHSIM_PROVENANCE=1 writes provenance.bin (the full
// gossip edge log) and one with ETHSIM_SAMPLE=1 writes timeseries.bin (the
// sampled engine-state columns) next to manifest.json. This tool loads the
// artifact each query needs — and only that one — and answers the questions
// the aggregate telemetry cannot:
//
//   ethsim_inspect <run-dir> --block <hash|head> --tree
//       Reconstruct the block's dissemination tree: who heard it when, at
//       what hop depth, from whom, via which mechanism (push / announce /
//       fetch) — a Fig. 1 propagation wave as an actual tree.
//   ethsim_inspect <run-dir> --node <id> --timeline
//       Every edge touching a host, in time order.
//   ethsim_inspect <run-dir> --redundancy [--top N]
//       Per-host redundant receptions + wasted bytes, worst offenders first
//       (the per-node attribution behind Table 2).
//   ethsim_inspect <run-dir> --hops
//       First-delivery hop-depth distribution + push-vs-announce shares.
//   ethsim_inspect <run-dir> --infer-degree [--top N]
//       Ethna-style degree inference from reception counts.
//   ethsim_inspect <run-dir> --timeseries [--series S] [--from A] [--to B]
//       Per-series stats (min / mean / max / last) over the sampled columns,
//       optionally sliced to a sim-time window in seconds — pass a fault
//       window from the manifest's partition_window extras to see queue and
//       backlog inflation line up with the outage. --csv dumps the selected
//       window as CSV for plotting.
//   ethsim_inspect <run-dir> --watermarks
//       Per-series peak + the sim time it was first hit (same values the
//       producing run folded into manifest.json).
//   ethsim_inspect <run-dir> --demand
//       Workload-plan demand summary from the manifest extras: offered and
//       included totals per traffic source, replacement churn, and the
//       closed-loop position at run end. Only runs driven by a non-empty
//       WorkloadPlan record these; a default-workload manifest is a one-line
//       error and a nonzero exit.
//   ethsim_inspect <run-dir> --tx <hash>
//       One transaction's full lifecycle timeline from txprov.bin (runs
//       executed with ETHSIM_TXPROV=1): submission, vantage first-seens,
//       pool outcomes per host, selection, inclusion, orphan returns and
//       depth commits, in recording order.
//   ethsim_inspect <run-dir> --stages [--by-region|--by-pool] [--csv]
//       Commit-latency decomposition (submit->admit / admit->include /
//       include->commit) over every committed transaction in txprov.bin.
//       Default prints overall + both breakdowns; --by-region / --by-pool
//       restrict to one. --csv emits machine-readable rows.
//   ethsim_inspect <run-dir> --summary   (default when no query given)
//
// `--json` switches --demand, --watermarks, --redundancy and --hops to
// machine-readable JSON.
//
// `--block head` resolves the head hash from manifest.json, so the common
// "show me the head block's tree" needs no copy-pasted hash.
//
// Artifact errors (missing, truncated, wrong magic) are a one-line
// diagnostic and a nonzero exit — never a partial report.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/dissemination.hpp"
#include "analysis/latency_stages.hpp"
#include "common/types.hpp"
#include "net/geo.hpp"
#include "obs/diag.hpp"
#include "obs/provenance_dag.hpp"
#include "obs/sampler.hpp"
#include "obs/tx_provenance.hpp"

namespace {

using ethsim::Hash32;
using ethsim::analysis::BlockObjects;
using ethsim::analysis::BuildDisseminationTree;
using ethsim::analysis::DisseminationTree;
using ethsim::analysis::FirstDeliveryBreakdown;
using ethsim::analysis::HopDepths;
using ethsim::analysis::InferDegrees;
using ethsim::analysis::WasteByHost;
using ethsim::obs::ComputeWatermarks;
using ethsim::obs::EdgeDrop;
using ethsim::obs::EdgeDropName;
using ethsim::obs::EdgeKind;
using ethsim::obs::EdgeKindName;
using ethsim::obs::LogError;
using ethsim::obs::ProvenanceLog;
using ethsim::obs::SeriesWatermark;
using ethsim::obs::TimeSeriesLog;

void Usage() {
  std::fprintf(
      stderr,
      "usage: ethsim_inspect <run-dir> [query]\n"
      "  --summary                 provenance overview (default)\n"
      "  --block <hash|head> --tree   dissemination tree of one block\n"
      "  --node <id> --timeline    every edge touching a host\n"
      "  --redundancy [--top N]    per-host waste attribution\n"
      "  --hops                    hop-depth CDF + first-delivery shares\n"
      "  --infer-degree [--top N]  Ethna-style degree estimates\n"
      "  --timeseries              sampled state-series stats (ETHSIM_SAMPLE)\n"
      "    [--series <substr>]     restrict to matching series names\n"
      "    [--from <s>] [--to <s>] slice to a sim-time window in seconds\n"
      "    [--csv]                 dump the selected window as CSV\n"
      "  --watermarks              per-series peak value + sim time of peak\n"
      "  --demand                  per-source workload demand (plan runs)\n"
      "  --tx <hash>               one transaction's lifecycle (ETHSIM_TXPROV)\n"
      "  --stages                  commit-latency stage decomposition\n"
      "    [--by-region|--by-pool] restrict the breakdown sections\n"
      "    [--csv]                 machine-readable rows\n"
      "  --json                    JSON output for --demand / --watermarks /\n"
      "                            --redundancy / --hops\n");
}

std::string RegionName(const ProvenanceLog& log, std::uint32_t host) {
  if (host < log.host_region.size() && log.host_region[host] != 0xff) {
    return std::string(ethsim::net::RegionShortName(
        static_cast<ethsim::net::Region>(log.host_region[host])));
  }
  return "?";
}

// Pulls "head_hash": "..." out of manifest.json without a JSON library —
// the manifest writer emits exactly this shape.
bool HeadHashFromManifest(const std::string& dir, std::string* hex) {
  std::ifstream in(dir + "/manifest.json");
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto key = line.find("\"head_hash\"");
    if (key == std::string::npos) continue;
    const auto open = line.find('"', key + 11);
    if (open == std::string::npos) continue;
    const auto close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    *hex = line.substr(open + 1, close - open - 1);
    return !hex->empty();
  }
  return false;
}

// Generic manifest extra lookup ("key": "value"), same line-scraping
// approach as the head hash. Returns false when the key is absent.
bool ManifestValue(const std::string& dir, const std::string& key,
                   std::string* value) {
  std::ifstream in(dir + "/manifest.json");
  if (!in) return false;
  const std::string quoted = "\"" + key + "\"";
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find(quoted);
    if (pos == std::string::npos) continue;
    const auto open = line.find('"', pos + quoted.size());
    if (open == std::string::npos) continue;
    const auto close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    *value = line.substr(open + 1, close - open - 1);
    return true;
  }
  return false;
}

// Executed partition windows ("partition_window.N": "start_us..end_us")
// from the manifest extras, same line-scraping approach as the head hash.
// Missing manifest or no windows is not an error — just empty context.
std::vector<std::pair<std::int64_t, std::int64_t>> PartitionWindowsFromManifest(
    const std::string& dir) {
  std::vector<std::pair<std::int64_t, std::int64_t>> windows;
  std::ifstream in(dir + "/manifest.json");
  if (!in) return windows;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t pos = 0;
    while ((pos = line.find("\"partition_window.", pos)) != std::string::npos) {
      const auto key_end = line.find('"', pos + 1);
      if (key_end == std::string::npos) break;
      const auto open = line.find('"', key_end + 1);
      if (open == std::string::npos) break;
      const auto close = line.find('"', open + 1);
      if (close == std::string::npos) break;
      const std::string value = line.substr(open + 1, close - open - 1);
      char* rest = nullptr;
      const std::int64_t start = std::strtoll(value.c_str(), &rest, 10);
      if (rest != nullptr && rest[0] == '.' && rest[1] == '.')
        windows.emplace_back(start, std::strtoll(rest + 2, nullptr, 10));
      pos = close + 1;
    }
  }
  return windows;
}

// Accepts a full 32-byte hex hash, a shorter hex prefix (>= 8 bytes / 16
// chars resolves directly; shorter prefixes match against the log), or the
// literal "head".
bool ResolveObject(const std::string& dir, const ProvenanceLog& log,
                   std::string token, std::uint64_t* object) {
  if (token == "head") {
    std::string hex;
    if (!HeadHashFromManifest(dir, &hex)) {
      LogError("inspect",
               "cannot resolve 'head': no head_hash in %s/manifest.json",
               dir.c_str());
      return false;
    }
    token = hex;
  }
  if (token.rfind("0x", 0) == 0) token = token.substr(2);
  if (token.size() > 16) token = token.substr(0, 16);  // prefix_u64 covers 8B
  if (token.empty() || token.size() % 2 != 0) {
    LogError("inspect", "bad block hash '%s'", token.c_str());
    return false;
  }
  std::uint64_t prefix = 0;
  for (char c : token) {
    int nibble;
    if (c >= '0' && c <= '9') nibble = c - '0';
    else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nibble = c - 'A' + 10;
    else {
      LogError("inspect", "bad hex in '%s'", token.c_str());
      return false;
    }
    prefix = (prefix << 4) | static_cast<std::uint64_t>(nibble);
  }
  if (token.size() == 16) {
    *object = prefix;
    return true;
  }
  // Short prefix: shift into the high bits and scan the log for one match.
  const unsigned bits = static_cast<unsigned>(token.size()) * 4;
  const std::uint64_t wanted = prefix << (64 - bits);
  std::uint64_t found = 0;
  for (const std::uint64_t candidate : BlockObjects(log)) {
    if ((candidate >> (64 - bits)) << (64 - bits) == wanted) {
      if (found != 0 && found != candidate) {
        LogError("inspect", "ambiguous prefix '%s'", token.c_str());
        return false;
      }
      found = candidate;
    }
  }
  if (found == 0) {
    LogError("inspect", "no block matches '%s'", token.c_str());
    return false;
  }
  *object = found;
  return true;
}

int PrintSummary(const ProvenanceLog& log) {
  std::uint64_t delivered = 0, dropped = 0;
  std::uint64_t by_kind[ethsim::obs::kEdgeKindCount] = {};
  std::uint64_t by_drop[ethsim::obs::kEdgeDropCount] = {};
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    ++by_kind[log.kind[i]];
    bytes += log.bytes[i];
    if (log.drop[i] != 0) {
      ++dropped;
      ++by_drop[log.drop[i]];
    } else if (log.delivered(i)) {
      ++delivered;
    }
  }
  std::printf("edges: %zu  delivered: %" PRIu64 "  dropped: %" PRIu64
              "  wire bytes: %" PRIu64 "\n",
              log.size(), delivered, dropped, bytes);
  std::printf("hosts: %zu  blocks: %zu  end_us: %" PRId64 "\n",
              log.host_region.size(), BlockObjects(log).size(), log.end_us);
  for (std::size_t k = 0; k < ethsim::obs::kEdgeKindCount; ++k)
    if (by_kind[k] != 0)
      std::printf("  kind %-14s %" PRIu64 "\n",
                  std::string(EdgeKindName(static_cast<EdgeKind>(k))).c_str(),
                  by_kind[k]);
  for (std::size_t d = 1; d < ethsim::obs::kEdgeDropCount; ++d)
    if (by_drop[d] != 0)
      std::printf("  drop %-14s %" PRIu64 "\n",
                  std::string(EdgeDropName(static_cast<EdgeDrop>(d))).c_str(),
                  by_drop[d]);
  return 0;
}

int PrintTree(const ProvenanceLog& log, std::uint64_t object) {
  const DisseminationTree tree = BuildDisseminationTree(log, object);
  if (tree.nodes.empty()) {
    LogError("inspect", "block %016" PRIx64 " has no edges in this log",
             object);
    return 1;
  }
  std::printf("block %016" PRIx64 " (number %" PRIu64 "): reached %zu hosts\n",
              tree.object, tree.number, tree.nodes.size());
  std::printf("redundant edges: %" PRIu64 "  wasted bytes: %" PRIu64
              " / %" PRIu64 "  dropped: %" PRIu64 "\n",
              tree.redundant_edges, tree.wasted_bytes, tree.total_bytes,
              tree.dropped_edges);
  std::printf("%10s %6s %4s %-14s %6s  %s\n", "t_us", "host", "hop", "via",
              "from", "region");
  for (const auto& node : tree.nodes) {
    std::printf("%10" PRId64 " %6u %4u %-14s %6u  %s\n",
                node.first_arrival_us, node.host, node.hop,
                std::string(EdgeKindName(node.via)).c_str(), node.parent_host,
                RegionName(log, node.host).c_str());
  }
  return 0;
}

int PrintTimeline(const ProvenanceLog& log, std::uint32_t host) {
  struct Row {
    std::int64_t t;
    std::size_t i;
    bool outbound;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.from[i] == host)
      rows.push_back({log.send_us[i], i, true});
    else if (log.to[i] == host)
      rows.push_back({log.arrival_us[i] >= 0 ? log.arrival_us[i]
                                             : log.send_us[i],
                      i, false});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.i < b.i;
  });
  std::printf("host %u (%s): %zu edges\n", host,
              RegionName(log, host).c_str(), rows.size());
  for (const Row& row : rows) {
    const std::size_t i = row.i;
    const char* dir = row.outbound ? "->" : "<-";
    const std::uint32_t peer = row.outbound ? log.to[i] : log.from[i];
    std::printf("%10" PRId64 " %s %6u %-14s obj %016" PRIx64 " hop %u %7u B",
                row.t, dir, peer,
                std::string(EdgeKindName(static_cast<EdgeKind>(log.kind[i])))
                    .c_str(),
                log.object[i], log.hop[i], log.bytes[i]);
    if (log.drop[i] != 0)
      std::printf("  [%s]",
                  std::string(EdgeDropName(static_cast<EdgeDrop>(log.drop[i])))
                      .c_str());
    std::printf("\n");
  }
  return 0;
}

int PrintRedundancy(const ProvenanceLog& log, std::size_t top, bool json) {
  if (json) {
    std::fputs(ethsim::analysis::RenderRedundancyJson(log, top).c_str(),
               stdout);
    return 0;
  }
  const auto waste = WasteByHost(log);
  std::printf("%6s %8s %10s %10s %12s  %s\n", "host", "recv", "redundant",
              "redun %", "wasted B", "region");
  std::size_t shown = 0;
  std::uint64_t total_wasted = 0, total_recv = 0;
  for (const auto& entry : waste) {
    total_wasted += entry.wasted_bytes;
    total_recv += entry.receptions;
  }
  for (const auto& entry : waste) {
    if (shown++ >= top) break;
    const double pct =
        entry.receptions > 0
            ? 100.0 * static_cast<double>(entry.redundant_receptions) /
                  static_cast<double>(entry.receptions)
            : 0.0;
    std::printf("%6u %8" PRIu64 " %10" PRIu64 " %9.1f%% %12" PRIu64 "  %s\n",
                entry.host, entry.receptions, entry.redundant_receptions, pct,
                entry.wasted_bytes, RegionName(log, entry.host).c_str());
  }
  std::printf("total: %zu hosts, %" PRIu64 " receptions, %" PRIu64
              " wasted bytes\n",
              waste.size(), total_recv, total_wasted);
  return 0;
}

int PrintHops(const ProvenanceLog& log, bool json) {
  if (json) {
    std::fputs(ethsim::analysis::RenderHopsJson(log).c_str(), stdout);
    return 0;
  }
  const auto dist = HopDepths(log);
  const auto shares = FirstDeliveryBreakdown(log);
  std::printf("first-delivery hop depths over %zu (block, host) pairs\n",
              dist.depths.size());
  std::printf("mean %.2f  p50 %u  p90 %u  p99 %u  max %u\n", dist.mean,
              dist.Quantile(0.50), dist.Quantile(0.90), dist.Quantile(0.99),
              dist.max);
  const double total = static_cast<double>(shares.total());
  if (total > 0) {
    std::printf("first delivery via: push %" PRIu64 " (%.1f%%)  announce %"
                PRIu64 " (%.1f%%)  fetched %" PRIu64 " (%.1f%%)\n",
                shares.push, 100.0 * shares.push / total, shares.announce,
                100.0 * shares.announce / total, shares.fetched,
                100.0 * shares.fetched / total);
  }
  return 0;
}

int PrintDegrees(const ProvenanceLog& log, std::size_t top) {
  auto estimates = InferDegrees(log);
  std::sort(estimates.begin(), estimates.end(),
            [](const auto& a, const auto& b) {
              if (a.estimated_degree != b.estimated_degree)
                return a.estimated_degree > b.estimated_degree;
              return a.host < b.host;
            });
  std::printf("%6s %10s %8s  %s\n", "host", "est.deg", "blocks", "region");
  std::size_t shown = 0;
  for (const auto& estimate : estimates) {
    if (shown++ >= top) break;
    std::printf("%6u %10.2f %8" PRIu64 "  %s\n", estimate.host,
                estimate.estimated_degree, estimate.blocks,
                RegionName(log, estimate.host).c_str());
  }
  return 0;
}

// --- timeseries.bin queries -------------------------------------------------

struct TimeSeriesQuery {
  std::string series;  // substring filter; empty = all series
  double from_s = -1.0;
  double to_s = -1.0;  // < 0 = unbounded
  bool csv = false;
};

// Minimal JSON string escaping (quotes and backslashes), matching the
// manifest writer's own rules.
std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

int PrintWatermarks(const TimeSeriesLog& ts, bool json) {
  if (json) {
    std::printf("{\"watermarks\": [");
    bool first = true;
    for (const SeriesWatermark& mark : ComputeWatermarks(ts)) {
      std::printf("%s{\"series\": \"%s\", \"peak\": %" PRId64
                  ", \"at_us\": %" PRId64 "}",
                  first ? "" : ", ", JsonEscape(mark.series).c_str(),
                  mark.peak, mark.at_us);
      first = false;
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("%-30s %14s %14s\n", "series", "peak", "at sim-s");
  for (const SeriesWatermark& mark : ComputeWatermarks(ts))
    std::printf("%-30s %14" PRId64 " %14.1f\n", mark.series.c_str(), mark.peak,
                static_cast<double>(mark.at_us) / 1e6);
  return 0;
}

int PrintTimeSeries(const std::string& dir, const TimeSeriesLog& ts,
                    const TimeSeriesQuery& query) {
  const std::int64_t from_us =
      query.from_s < 0 ? std::numeric_limits<std::int64_t>::min()
                       : static_cast<std::int64_t>(query.from_s * 1e6);
  const std::int64_t to_us =
      query.to_s < 0 ? std::numeric_limits<std::int64_t>::max()
                     : static_cast<std::int64_t>(query.to_s * 1e6);
  // The shared time column is nondecreasing by construction, so the window
  // is a contiguous sample range.
  std::size_t lo = 0, hi = ts.sample_count();
  while (lo < hi && ts.t_us[lo] < from_us) ++lo;
  while (hi > lo && ts.t_us[hi - 1] > to_us) --hi;

  std::vector<std::size_t> selected;
  for (std::size_t s = 0; s < ts.series_count(); ++s)
    if (query.series.empty() ||
        ts.names[s].find(query.series) != std::string::npos)
      selected.push_back(s);
  if (selected.empty()) {
    LogError("inspect", "no series matches '%s'", query.series.c_str());
    return 1;
  }

  if (query.csv) {
    std::printf("t_us");
    for (const std::size_t s : selected)
      std::printf(",%s", ts.names[s].c_str());
    std::printf("\n");
    for (std::size_t i = lo; i < hi; ++i) {
      std::printf("%" PRId64, ts.t_us[i]);
      for (const std::size_t s : selected)
        std::printf(",%" PRId64, ts.values[s][i]);
      std::printf("\n");
    }
    return 0;
  }

  std::printf("timeseries: %zu series, %zu samples, interval %" PRId64
              " us\n",
              ts.series_count(), ts.sample_count(), ts.interval_us);
  if (lo > 0 || hi < ts.sample_count()) {
    const double start =
        lo < hi ? static_cast<double>(ts.t_us[lo]) / 1e6 : 0.0;
    const double end =
        lo < hi ? static_cast<double>(ts.t_us[hi - 1]) / 1e6 : 0.0;
    std::printf("window: %.1f .. %.1f sim-s (%zu samples)\n", start, end,
                hi - lo);
  }
  // Print the executed fault windows next to the stats so an operator can
  // see at a glance whether a peak falls inside an outage.
  const auto windows = PartitionWindowsFromManifest(dir);
  for (std::size_t i = 0; i < windows.size(); ++i)
    std::printf("partition window %zu: %.1f .. %.1f sim-s\n", i,
                static_cast<double>(windows[i].first) / 1e6,
                static_cast<double>(windows[i].second) / 1e6);

  std::printf("%-30s %12s %12s %12s %12s\n", "series", "min", "mean", "max",
              "last");
  for (const std::size_t s : selected) {
    std::int64_t min = 0, max = 0;
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::int64_t v = ts.values[s][i];
      if (i == lo || v < min) min = v;
      if (i == lo || v > max) max = v;
      sum += static_cast<double>(v);
    }
    const std::size_t n = hi - lo;
    std::printf("%-30s %12" PRId64 " %12.1f %12" PRId64 " %12" PRId64 "\n",
                ts.names[s].c_str(), n > 0 ? min : 0,
                n > 0 ? sum / static_cast<double>(n) : 0.0, n > 0 ? max : 0,
                n > 0 ? ts.values[s][hi - 1] : 0);
  }
  return 0;
}

// --- txprov.bin queries -----------------------------------------------------

std::string TxRegionName(const ethsim::obs::TxProvLog& log,
                         std::uint32_t host) {
  if (host < log.host_region.size() && log.host_region[host] != 0xff) {
    return std::string(ethsim::net::RegionShortName(
        static_cast<ethsim::net::Region>(log.host_region[host])));
  }
  return "?";
}

// Same hex handling as ResolveObject, but matched against the tx column of
// the lifecycle log (no "head" shorthand — heads are blocks).
bool ResolveTx(const ethsim::obs::TxProvLog& log, std::string token,
               std::uint64_t* tx) {
  if (token.rfind("0x", 0) == 0) token = token.substr(2);
  if (token.size() > 16) token = token.substr(0, 16);
  if (token.empty() || token.size() % 2 != 0) {
    LogError("inspect", "bad tx hash '%s'", token.c_str());
    return false;
  }
  std::uint64_t prefix = 0;
  for (char c : token) {
    int nibble;
    if (c >= '0' && c <= '9') nibble = c - '0';
    else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nibble = c - 'A' + 10;
    else {
      LogError("inspect", "bad hex in '%s'", token.c_str());
      return false;
    }
    prefix = (prefix << 4) | static_cast<std::uint64_t>(nibble);
  }
  if (token.size() == 16) {
    *tx = prefix;
    return true;
  }
  const unsigned bits = static_cast<unsigned>(token.size()) * 4;
  const std::uint64_t wanted = prefix << (64 - bits);
  std::uint64_t found = 0;
  for (const std::uint64_t candidate : log.tx) {
    if ((candidate >> (64 - bits)) << (64 - bits) == wanted) {
      if (found != 0 && found != candidate) {
        LogError("inspect", "ambiguous tx prefix '%s'", token.c_str());
        return false;
      }
      found = candidate;
    }
  }
  if (found == 0) {
    LogError("inspect", "no transaction matches '%s'", token.c_str());
    return false;
  }
  *tx = found;
  return true;
}

int PrintTxTimeline(const ethsim::obs::TxProvLog& log, std::uint64_t tx) {
  using ethsim::obs::TxPoolOutcome;
  using ethsim::obs::TxPoolOutcomeName;
  using ethsim::obs::TxStage;
  using ethsim::obs::TxStageName;
  std::size_t records = 0;
  for (std::size_t i = 0; i < log.size(); ++i)
    if (log.tx[i] == tx) ++records;
  if (records == 0) {
    LogError("inspect", "tx %016" PRIx64 " has no records in this log", tx);
    return 1;
  }
  std::printf("tx %016" PRIx64 ": %zu stage records\n", tx, records);
  std::printf("%12s %6s %-6s %-15s  %s\n", "t_us", "host", "region", "stage",
              "detail");
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (log.tx[i] != tx) continue;
    const auto stage = static_cast<TxStage>(log.stage[i]);
    std::printf("%12" PRId64 " %6u %-6s %-15s  ", log.t_us[i], log.host[i],
                TxRegionName(log, log.host[i]).c_str(),
                std::string(TxStageName(stage)).c_str());
    switch (stage) {
      case TxStage::kSubmitted:
        std::printf("source=%u gas=%" PRIu64 " replacement=%" PRIu64,
                    log.info[i], log.aux[i], log.number[i]);
        break;
      case TxStage::kFirstSeen:
        break;
      case TxStage::kPoolAdmitted:
      case TxStage::kPoolRejected:
      case TxStage::kPoolReplaced:
        std::printf("outcome=%s gas=%" PRIu64,
                    std::string(TxPoolOutcomeName(
                                    static_cast<TxPoolOutcome>(log.info[i])))
                        .c_str(),
                    log.aux[i]);
        break;
      case TxStage::kSelected:
        std::printf("pool=%u block=%016" PRIx64 " height=%" PRIu64,
                    log.info[i], log.aux[i], log.number[i]);
        break;
      case TxStage::kIncluded:
      case TxStage::kOrphanReturned:
        std::printf("block=%016" PRIx64 " height=%" PRIu64, log.aux[i],
                    log.number[i]);
        break;
      case TxStage::kCommitted:
        std::printf("depth=%u block=%016" PRIx64 " include_height=%" PRIu64,
                    log.info[i], log.aux[i], log.number[i]);
        break;
    }
    std::printf("\n");
  }
  return 0;
}

int PrintStages(const ethsim::obs::TxProvLog& log, bool by_region,
                bool by_pool, bool csv) {
  const ethsim::analysis::LatencyStageResult result =
      ethsim::analysis::DecomposeLatencyStages(log);
  if (csv)
    std::fputs(ethsim::analysis::RenderLatencyStagesCsv(result).c_str(),
               stdout);
  else
    std::fputs(ethsim::analysis::RenderLatencyStages(result, by_region,
                                                     by_pool)
                   .c_str(),
               stdout);
  return 0;
}

// --- manifest.json demand query ---------------------------------------------

// Splits a "name:kind:submitted:included" source row. Names cannot contain
// ':' (plan validation does not forbid it, but the writer owns both sides;
// split from the right so a pathological name degrades gracefully).
std::vector<std::string> SplitSourceRow(const std::string& row) {
  std::vector<std::string> fields(4);
  std::size_t end = row.size();
  for (int f = 3; f >= 1; --f) {
    const auto colon = row.rfind(':', end == 0 ? 0 : end - 1);
    if (colon == std::string::npos) break;
    fields[static_cast<std::size_t>(f)] = row.substr(colon + 1,
                                                     end - colon - 1);
    end = colon;
  }
  fields[0] = row.substr(0, end);
  return fields;
}

// Per-source demand from the workload extras a plan-driven run folds into
// its manifest ("workload_source.N" = "name:kind:submitted:included").
int PrintDemand(const std::string& dir, bool json) {
  std::string sources;
  if (!ManifestValue(dir, "workload_sources", &sources)) {
    LogError("inspect",
             "no workload extras in %s/manifest.json (only runs driven by a "
             "non-empty WorkloadPlan record demand data)",
             dir.c_str());
    return 1;
  }
  std::string submitted, replacements, completed, in_flight;
  ManifestValue(dir, "workload_submitted", &submitted);
  ManifestValue(dir, "workload_replacements", &replacements);
  ManifestValue(dir, "workload_closed_loop_completed", &completed);
  ManifestValue(dir, "workload_in_flight_end", &in_flight);
  const std::size_t count =
      static_cast<std::size_t>(std::strtoull(sources.c_str(), nullptr, 10));

  // Collect every row before printing anything: a missing row is a one-line
  // stderr diagnostic and a nonzero exit, never a partial report.
  std::vector<std::vector<std::string>> rows;
  rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string row;
    if (!ManifestValue(dir, "workload_source." + std::to_string(i), &row)) {
      LogError("inspect", "manifest lists %zu sources but workload_source.%zu "
               "is missing", count, i);
      return 1;
    }
    rows.push_back(SplitSourceRow(row));
  }

  // Numeric extras are decimal strings written by the manifest; emit "0"
  // when a key is absent so the JSON stays well-formed.
  const auto num = [](const std::string& value) {
    return value.empty() ? std::string("0") : value;
  };
  if (json) {
    std::printf("{\"sources\": %s, \"submitted\": %s, \"replacements\": %s, "
                "\"closed_loop_completed\": %s, \"in_flight_end\": %s, "
                "\"per_source\": [",
                num(sources).c_str(), num(submitted).c_str(),
                num(replacements).c_str(), num(completed).c_str(),
                num(in_flight).c_str());
  } else {
    std::printf("workload plan: %s sources, %s submitted, %s replacements\n",
                sources.c_str(), submitted.c_str(), replacements.c_str());
    std::printf("closed loop: %s completed; %s tracked txs in flight at end\n",
                completed.c_str(), in_flight.c_str());
    std::printf("%-4s %-20s %-12s %12s %12s\n", "#", "source", "kind",
                "submitted", "included");
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::vector<std::string>& fields = rows[i];
    if (json) {
      std::printf("%s{\"index\": %zu, \"name\": \"%s\", \"kind\": \"%s\", "
                  "\"submitted\": %s, \"included\": %s}",
                  i == 0 ? "" : ", ", i, JsonEscape(fields[0]).c_str(),
                  JsonEscape(fields[1]).c_str(), num(fields[2]).c_str(),
                  num(fields[3]).c_str());
    } else {
      std::printf("%-4zu %-20s %-12s %12s %12s\n", i, fields[0].c_str(),
                  fields[1].c_str(), fields[2].c_str(), fields[3].c_str());
    }
  }
  if (json) std::printf("]}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string dir = argv[1];
  std::string block_token;
  std::string node_token;
  std::string tx_token;
  bool want_tree = false, want_timeline = false, want_redundancy = false;
  bool want_hops = false, want_degree = false, want_summary = false;
  bool want_timeseries = false, want_watermarks = false, want_demand = false;
  bool want_stages = false, by_region = false, by_pool = false;
  bool json = false;
  TimeSeriesQuery ts_query;
  std::size_t top = 20;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        LogError("inspect", "%s needs a value", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--block") block_token = next("--block");
    else if (arg == "--node") node_token = next("--node");
    else if (arg == "--tree") want_tree = true;
    else if (arg == "--timeline") want_timeline = true;
    else if (arg == "--redundancy") want_redundancy = true;
    else if (arg == "--hops") want_hops = true;
    else if (arg == "--infer-degree") want_degree = true;
    else if (arg == "--summary") want_summary = true;
    else if (arg == "--timeseries") want_timeseries = true;
    else if (arg == "--watermarks") want_watermarks = true;
    else if (arg == "--demand") want_demand = true;
    else if (arg == "--tx") tx_token = next("--tx");
    else if (arg == "--stages") want_stages = true;
    else if (arg == "--by-region") by_region = true;
    else if (arg == "--by-pool") by_pool = true;
    else if (arg == "--json") json = true;
    else if (arg == "--series") ts_query.series = next("--series");
    else if (arg == "--from") ts_query.from_s = std::strtod(next("--from"),
                                                            nullptr);
    else if (arg == "--to") ts_query.to_s = std::strtod(next("--to"), nullptr);
    else if (arg == "--csv") ts_query.csv = true;
    else if (arg == "--top") top = static_cast<std::size_t>(
        std::strtoull(next("--top"), nullptr, 10));
    else {
      LogError("inspect", "unknown flag %s", arg.c_str());
      Usage();
      return 2;
    }
  }

  // The demand query reads only manifest.json: no binary artifact needed.
  if (want_demand) return PrintDemand(dir, json);

  // Lifecycle queries read only txprov.bin: a run recorded without gossip
  // provenance still answers --tx / --stages.
  if (!tx_token.empty() || want_stages) {
    ethsim::obs::TxProvLog txlog;
    std::string error;
    if (!ethsim::obs::TxProvLog::ReadBinary(dir + "/txprov.bin", &txlog,
                                            &error)) {
      LogError("inspect",
               "%s (run the producing tool with ETHSIM_TXPROV=1 to record "
               "transaction lifecycles)",
               error.c_str());
      return 1;
    }
    if (!tx_token.empty()) {
      std::uint64_t tx = 0;
      if (!ResolveTx(txlog, tx_token, &tx)) return 1;
      return PrintTxTimeline(txlog, tx);
    }
    // Neither breakdown flag = both sections.
    if (!by_region && !by_pool) by_region = by_pool = true;
    return PrintStages(txlog, by_region, by_pool, ts_query.csv);
  }

  // Time-series queries read only timeseries.bin: a run sampled without
  // provenance recording is fully inspectable.
  if (want_timeseries || want_watermarks) {
    TimeSeriesLog ts;
    std::string error;
    if (!TimeSeriesLog::ReadBinary(dir + "/timeseries.bin", &ts, &error)) {
      LogError("inspect",
               "%s (run the producing tool with ETHSIM_SAMPLE=1 to record "
               "state series)",
               error.c_str());
      return 1;
    }
    if (want_watermarks) return PrintWatermarks(ts, json);
    return PrintTimeSeries(dir, ts, ts_query);
  }

  ProvenanceLog log;
  std::string error;
  if (!ProvenanceLog::ReadBinary(dir + "/provenance.bin", &log, &error)) {
    LogError("inspect",
             "%s (run the producing tool with ETHSIM_PROVENANCE=1 to record "
             "the edge log)",
             error.c_str());
    return 1;
  }

  // `--block X` implies --tree; `--node X` implies --timeline.
  if (!block_token.empty() && !want_timeline) want_tree = true;
  if (!node_token.empty() && !want_tree) want_timeline = true;

  if (want_tree) {
    if (block_token.empty()) {
      LogError("inspect", "--tree needs --block <hash|head>");
      return 2;
    }
    std::uint64_t object = 0;
    if (!ResolveObject(dir, log, block_token, &object)) return 1;
    return PrintTree(log, object);
  }
  if (want_timeline) {
    if (node_token.empty()) {
      LogError("inspect", "--timeline needs --node <id>");
      return 2;
    }
    return PrintTimeline(log, static_cast<std::uint32_t>(
                                  std::strtoul(node_token.c_str(), nullptr, 10)));
  }
  if (want_redundancy) return PrintRedundancy(log, top, json);
  if (want_hops) return PrintHops(log, json);
  if (want_degree) return PrintDegrees(log, top);
  (void)want_summary;
  return PrintSummary(log);
}
