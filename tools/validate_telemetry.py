#!/usr/bin/env python3
"""Schema-check a telemetry artifact directory.

Usage:
    tools/validate_telemetry.py DIR [--require METRIC]... \
                                    [--forbid-nonzero PREFIX]...

Validates whichever artifacts exist in DIR (at least manifest.json must):

  manifest.json   ethsim-run-manifest-v1: required keys, hex digests
  metrics.jsonl   one JSON object per line; counter/gauge/histogram schemas
  trace.json      Chrome trace-event JSON: traceEvents list, per-event keys
  profile.jsonl   sample / callback_histogram / phase records
  provenance.bin  ETHPROV1 columnar relay-edge log: header, column sizes,
                  enum ranges, arrival/drop consistency
  timeseries.bin  ETHTS1 columnar state-sample log: header, name table,
                  exact file size, nondecreasing time column
  txprov.bin      ETHTX1 columnar tx-lifecycle stage log: header, exact
                  file size, stage enum range, per-tx monotone times

--require METRIC (repeatable) additionally asserts that metrics.jsonl
contains at least one metric whose name equals METRIC or starts with
"METRIC{" (the labeled form, e.g. --require fault.injected matches
fault.injected{kind=node_crash}). Used by the fault-smoke CI job to prove
a faulted run really recorded fault.injected / net.msg.dropped_reason
counters, not just an empty registry.

--forbid-nonzero PREFIX (repeatable) fails when any counter whose name
equals PREFIX or starts with "PREFIX{" has a non-zero value. The
provenance-smoke CI job uses --forbid-nonzero provenance.violation to
assert the run was invariant-clean.

Exit status: 0 = valid, 1 = validation failure, 2 = usage/IO error.
"""

import json
import os
import string
import struct
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"  FAIL: {msg}")


def is_hex(value, digits=None):
    return (isinstance(value, str)
            and (digits is None or len(value) == digits)
            and all(c in string.hexdigits for c in value))


def load_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def check_manifest(path):
    doc = load_json(path)
    if doc.get("schema") != "ethsim-run-manifest-v1":
        fail(f"manifest schema is {doc.get('schema')!r}")
    for key in ("tool", "seed", "config_digest", "determinism_digest",
                "events_executed", "head_number", "head_hash",
                "sim_duration_s", "telemetry", "build"):
        if key not in doc:
            fail(f"manifest missing key {key!r}")
    for key in ("config_digest", "determinism_digest", "head_hash"):
        if key in doc and not is_hex(doc[key], 64):
            fail(f"manifest {key} is not a 64-digit hex string: {doc[key]!r}")
    telemetry = doc.get("telemetry", {})
    for key in ("metrics", "trace", "profile", "provenance"):
        if not isinstance(telemetry.get(key), bool):
            fail(f"manifest telemetry.{key} is not a bool")
    # telemetry.sample and the watermarks object are rendered only for
    # sampled runs (byte-compat with pre-sampler manifests), so both are
    # optional -- but must be well-formed when present.
    if "sample" in telemetry and not isinstance(telemetry["sample"], bool):
        fail("manifest telemetry.sample is not a bool")
    # telemetry.txprov is likewise rendered only for tx-provenance runs.
    if "txprov" in telemetry and not isinstance(telemetry["txprov"], bool):
        fail("manifest telemetry.txprov is not a bool")
    if "watermarks" in doc:
        marks = doc["watermarks"]
        if not isinstance(marks, dict) or not marks:
            fail("manifest watermarks is not a non-empty object")
        else:
            for name, mark in marks.items():
                if (not isinstance(mark, dict)
                        or not isinstance(mark.get("peak"), int)
                        or not isinstance(mark.get("at_us"), int)):
                    fail(f"manifest watermarks[{name!r}] is malformed")
        if not telemetry.get("sample"):
            fail("manifest has watermarks but telemetry.sample is not true")
    build = doc.get("build", {})
    for key in ("git_sha", "build_type", "compiler"):
        if not isinstance(build.get(key), str):
            fail(f"manifest build.{key} is not a string")
    return doc


def check_metrics(path):
    names = set()
    counters = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                fail(f"metrics.jsonl:{lineno}: not JSON ({exc})")
                continue
            kind = record.get("type")
            name = record.get("name")
            if not isinstance(name, str) or not name:
                fail(f"metrics.jsonl:{lineno}: missing name")
                continue
            if name in names:
                fail(f"metrics.jsonl:{lineno}: duplicate metric {name!r}")
            names.add(name)
            if kind == "counter":
                ok = isinstance(record.get("value"), int)
                if ok:
                    counters[name] = record["value"]
            elif kind == "gauge":
                ok = (isinstance(record.get("value"), int)
                      and isinstance(record.get("high_water"), int))
            elif kind == "histogram":
                buckets = record.get("buckets")
                ok = (isinstance(record.get("count"), int)
                      and isinstance(record.get("sum"), int)
                      and isinstance(buckets, list)
                      and all(isinstance(b, list) and len(b) == 2
                              for b in buckets)
                      and buckets and buckets[-1][0] is None)
                if ok and sum(b[1] for b in buckets) != record["count"]:
                    fail(f"metrics.jsonl:{lineno}: bucket counts do not sum "
                         f"to count for {name!r}")
            else:
                ok = False
            if not ok:
                fail(f"metrics.jsonl:{lineno}: malformed {kind!r} record")
    if not names:
        fail("metrics.jsonl contains no metrics")
    return names, counters


def check_trace(path):
    doc = load_json(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("trace.json has no traceEvents list")
        return
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"traceEvents[{i}] is not an object")
            continue
        for key, kind in (("name", str), ("cat", str), ("ph", str),
                          ("ts", int), ("pid", int), ("tid", int)):
            if not isinstance(event.get(key), kind):
                fail(f"traceEvents[{i}] missing/invalid {key!r}")
                break
        else:
            if event["ph"] == "X" and not isinstance(event.get("dur"), int):
                fail(f"traceEvents[{i}]: complete event without dur")
            if event["ph"] not in ("X", "i"):
                fail(f"traceEvents[{i}]: unexpected phase {event['ph']!r}")
    other = doc.get("otherData", {})
    if not isinstance(other.get("emitted"), int):
        fail("trace.json otherData.emitted missing")
    elif other["emitted"] < len(events):
        fail("trace.json emitted < retained event count")


def check_profile(path):
    with open(path, "r", encoding="utf-8") as fh:
        kinds = set()
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                fail(f"profile.jsonl:{lineno}: not JSON ({exc})")
                continue
            kind = record.get("type")
            kinds.add(kind)
            if kind not in ("sample", "callback_histogram", "phase"):
                fail(f"profile.jsonl:{lineno}: unknown record type {kind!r}")
    if "callback_histogram" not in kinds:
        fail("profile.jsonl has no callback_histogram record")


PROV_MAGIC = b"ETHPROV1"
# Per-edge column widths in layout order (see ProvenanceLog::WriteBinary):
# send_us i64, arrival_us i64, from u32, to u32, object u64, parent u64,
# number u64, bytes u32, hop u16, kind u8, drop u8.
PROV_COLUMNS = (("send_us", 8), ("arrival_us", 8), ("from", 4), ("to", 4),
                ("object", 8), ("parent", 8), ("number", 8), ("bytes", 4),
                ("hop", 2), ("kind", 1), ("drop", 1))
PROV_KIND_COUNT = 6
PROV_DROP_COUNT = 5


def check_provenance(path):
    with open(path, "rb") as fh:
        blob = fh.read()
    header = struct.calcsize("<8sIIqq")
    if len(blob) < header:
        fail("provenance.bin shorter than its header")
        return
    magic, version, host_count, edge_count, end_us = struct.unpack_from(
        "<8sIIqq", blob)
    if magic != PROV_MAGIC:
        fail(f"provenance.bin bad magic {magic!r}")
        return
    if version != 1:
        fail(f"provenance.bin unsupported version {version}")
        return
    expected = header + host_count + edge_count * sum(
        width for _, width in PROV_COLUMNS)
    if len(blob) != expected:
        fail(f"provenance.bin is {len(blob)} bytes, expected {expected} "
             f"({edge_count} edges, {host_count} hosts)")
        return
    offset = header + host_count  # skip the host-region table
    columns = {}
    for name, width in PROV_COLUMNS:
        fmt = {8: "q", 4: "I", 2: "H", 1: "B"}[width]
        if name in ("from", "to", "bytes"):
            fmt = "I"
        columns[name] = struct.unpack_from(f"<{edge_count}{fmt}", blob, offset)
        offset += edge_count * width
    bad_kind = sum(1 for k in columns["kind"] if k >= PROV_KIND_COUNT)
    bad_drop = sum(1 for d in columns["drop"] if d >= PROV_DROP_COUNT)
    if bad_kind:
        fail(f"provenance.bin has {bad_kind} out-of-range kind bytes")
    if bad_drop:
        fail(f"provenance.bin has {bad_drop} out-of-range drop bytes")
    # A censored edge must not carry an arrival; a scheduled one must.
    inconsistent = sum(
        1 for a, d in zip(columns["arrival_us"], columns["drop"])
        if (d != 0 and a != -1) or (d == 0 and a < -1))
    if inconsistent:
        fail(f"provenance.bin has {inconsistent} edges with inconsistent "
             "arrival/drop")
    # Rows are globally ordered by send sequence (send_us non-decreasing).
    send = columns["send_us"]
    if any(send[i - 1] > send[i] for i in range(1, edge_count)):
        fail("provenance.bin rows are not in send order")
    print(f"  ok: provenance.bin ({edge_count} edges, {host_count} hosts, "
          f"end_us {end_us})")


TS_MAGIC = b"ETHTS1\x00\x00"


def check_timeseries(path):
    with open(path, "rb") as fh:
        blob = fh.read()
    header = struct.calcsize("<8sIIQq")
    if len(blob) < header:
        fail("timeseries.bin shorter than its header")
        return
    magic, version, series_count, sample_count, interval_us = (
        struct.unpack_from("<8sIIQq", blob))
    if magic != TS_MAGIC:
        fail(f"timeseries.bin bad magic {magic!r}")
        return
    if version != 1:
        fail(f"timeseries.bin unsupported version {version}")
        return
    if interval_us <= 0:
        fail(f"timeseries.bin interval_us {interval_us} is not positive")
    names = []
    offset = header
    for _ in range(series_count):
        if offset + 4 > len(blob):
            fail("timeseries.bin truncated in the series name table")
            return
        (length,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        if offset + length > len(blob):
            fail("timeseries.bin truncated in the series name table")
            return
        names.append(blob[offset:offset + length].decode("utf-8"))
        offset += length
    if len(set(names)) != len(names):
        fail("timeseries.bin has duplicate series names")
    if any(not n for n in names):
        fail("timeseries.bin has an empty series name")
    # One shared time column + one value column per series, all i64.
    expected = offset + 8 * sample_count * (1 + series_count)
    if len(blob) != expected:
        fail(f"timeseries.bin is {len(blob)} bytes, expected {expected} "
             f"({series_count} series, {sample_count} samples)")
        return
    t_us = struct.unpack_from(f"<{sample_count}q", blob, offset)
    if any(t_us[i - 1] > t_us[i] for i in range(1, sample_count)):
        fail("timeseries.bin time column is not nondecreasing")
    if sample_count and t_us[0] != 0:
        fail(f"timeseries.bin first sample at t={t_us[0]}, expected the "
             "t=0 baseline row")
    print(f"  ok: timeseries.bin ({series_count} series, {sample_count} "
          f"samples, every {interval_us} us)")


TXPROV_MAGIC = b"ETHTX1\x00\x00"
# Per-record column widths in layout order (see TxProvLog::WriteBinary):
# t_us i64, tx u64, host u32, stage u8, info u16, aux u64, number u64.
TXPROV_COLUMNS = (("t_us", "q"), ("tx", "Q"), ("host", "I"), ("stage", "B"),
                  ("info", "H"), ("aux", "Q"), ("number", "Q"))
TXPROV_STAGE_COUNT = 9


def check_txprov(path):
    with open(path, "rb") as fh:
        blob = fh.read()
    header = struct.calcsize("<8sIIIQq")
    if len(blob) < header:
        fail("txprov.bin shorter than its header")
        return
    magic, version, host_count, depth_count, record_count, end_us = (
        struct.unpack_from("<8sIIIQq", blob))
    if magic != TXPROV_MAGIC:
        fail(f"txprov.bin bad magic {magic!r}")
        return
    if version != 1:
        fail(f"txprov.bin unsupported version {version}")
        return
    widths = {"q": 8, "Q": 8, "I": 4, "H": 2, "B": 1}
    expected = (header + host_count + 8 * depth_count
                + record_count * sum(widths[f] for _, f in TXPROV_COLUMNS))
    if len(blob) != expected:
        fail(f"txprov.bin is {len(blob)} bytes, expected {expected} "
             f"({record_count} records, {host_count} hosts, "
             f"{depth_count} depths)")
        return
    offset = header + host_count  # skip the host-region table
    depths = struct.unpack_from(f"<{depth_count}Q", blob, offset)
    offset += 8 * depth_count
    if list(depths) != sorted(set(depths)):
        fail(f"txprov.bin depth table is not strictly increasing: {depths}")
    columns = {}
    for name, fmt in TXPROV_COLUMNS:
        columns[name] = struct.unpack_from(f"<{record_count}{fmt}", blob,
                                           offset)
        offset += record_count * widths[fmt]
    bad_stage = sum(1 for s in columns["stage"] if s >= TXPROV_STAGE_COUNT)
    if bad_stage:
        fail(f"txprov.bin has {bad_stage} out-of-range stage bytes")
    # Per-tx record times never go backwards (the global column can: legacy
    # bursts record their future submit timestamps at scheduling time).
    last = {}
    backwards = 0
    for tx, t in zip(columns["tx"], columns["t_us"]):
        if t < last.get(tx, t):
            backwards += 1
        elif t > last.get(tx, -2**63):
            last[tx] = t
    if backwards:
        fail(f"txprov.bin has {backwards} per-tx time regressions")
    # Commit depths must come from the header's depth table.
    depth_set = set(depths)
    bad_depth = sum(1 for s, i in zip(columns["stage"], columns["info"])
                    if s == 8 and i not in depth_set)
    if bad_depth:
        fail(f"txprov.bin has {bad_depth} commits at unswept depths")
    print(f"  ok: txprov.bin ({record_count} records, {host_count} hosts, "
          f"depths {list(depths)}, end_us {end_us})")


def check_required(names, required):
    for metric in required:
        labeled = metric + "{"
        if not any(n == metric or n.startswith(labeled) for n in names):
            fail(f"metrics.jsonl has no metric matching {metric!r}")
        else:
            print(f"  ok: required metric {metric}")


def check_forbidden(counters, forbidden):
    for prefix in forbidden:
        labeled = prefix + "{"
        hits = {n: v for n, v in counters.items()
                if n == prefix or n.startswith(labeled)}
        if not hits:
            fail(f"--forbid-nonzero {prefix}: no matching counter recorded")
            continue
        nonzero = {n: v for n, v in hits.items() if v != 0}
        for name, value in sorted(nonzero.items()):
            fail(f"counter {name} = {value} (required zero)")
        if not nonzero:
            print(f"  ok: {len(hits)} counter(s) matching {prefix!r} "
                  "are all zero")


def parse_args(argv):
    directory, required, forbidden = None, [], []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("--require", "--forbid-nonzero"):
            if i + 1 >= len(argv):
                print(__doc__, file=sys.stderr)
                sys.exit(2)
            (required if arg == "--require" else forbidden).append(argv[i + 1])
            i += 2
        elif directory is None:
            directory = arg
            i += 1
        else:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
    if directory is None:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    return directory, required, forbidden


def main():
    directory, required, forbidden = parse_args(sys.argv[1:])
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.exists(manifest_path):
        print(f"validate_telemetry: {manifest_path} not found", file=sys.stderr)
        sys.exit(2)

    print(f"validating {directory}/")
    manifest = check_manifest(manifest_path)
    telemetry = manifest.get("telemetry", {})

    metric_names = set()
    counter_values = {}
    checks = (("metrics.jsonl", telemetry.get("metrics"), check_metrics),
              ("trace.json", telemetry.get("trace"), check_trace),
              ("profile.jsonl", telemetry.get("profile"), check_profile),
              ("provenance.bin", telemetry.get("provenance"),
               check_provenance),
              ("timeseries.bin", telemetry.get("sample"), check_timeseries),
              ("txprov.bin", telemetry.get("txprov"), check_txprov))
    for filename, enabled, check in checks:
        path = os.path.join(directory, filename)
        present = os.path.exists(path)
        if enabled and not present:
            fail(f"manifest says {filename} enabled but the file is missing")
        elif present:
            result = check(path)
            if filename == "metrics.jsonl" and result:
                metric_names, counter_values = result
            if filename not in ("provenance.bin", "timeseries.bin",
                                "txprov.bin"):
                print(f"  ok: {filename}")  # .bin checks print their own line
    if required:
        if not metric_names:
            fail("--require given but no metrics.jsonl was validated")
        else:
            check_required(metric_names, required)
    if forbidden:
        if not counter_values:
            fail("--forbid-nonzero given but no metrics.jsonl was validated")
        else:
            check_forbidden(counter_values, forbidden)
    print("  ok: manifest.json" if not FAILURES else "")

    if FAILURES:
        print(f"validate_telemetry: {len(FAILURES)} failure(s)",
              file=sys.stderr)
        sys.exit(1)
    print("validate_telemetry: all artifacts valid")


if __name__ == "__main__":
    main()
