// ethmeasure_collect — the "measurement tool" of the paper's artifact
// release: runs a multi-vantage study and writes the raw logs + block
// catalog as a dataset directory that ethmeasure_analyze (or your own
// pandas) can process.
//
//   usage: ethmeasure_collect <output-dir> [hours=2] [nodes=120] [seed=42]
//                             [tx-rate=0.3]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hpp"
#include "core/provenance.hpp"
#include "measure/dataset.hpp"
#include "obs/diag.hpp"
#include "obs/telemetry.hpp"

using namespace ethsim;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <output-dir> [hours=2] [nodes=120] [seed=42] "
                 "[tx-rate=0.3]\n",
                 argv[0]);
    return 1;
  }
  const std::string out_dir = argv[1];
  const double hours = argc > 2 ? std::atof(argv[2]) : 2.0;
  const auto nodes = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3]))
                              : std::size_t{120};
  const auto seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4]))
                             : std::uint64_t{42};
  const double tx_rate = argc > 5 ? std::atof(argv[5]) : 0.3;

  core::ExperimentConfig cfg = core::presets::SmallStudy(nodes);
  cfg.duration = Duration::Hours(hours);
  cfg.seed = seed;
  cfg.workload.rate_per_sec = tx_rate;
  // ETHSIM_METRICS / ETHSIM_TRACE / ETHSIM_PROFILE gate the telemetry
  // streams; artifacts land next to the dataset.
  cfg.telemetry = obs::TelemetryConfig::FromEnv();

  std::printf("collecting: %zu nodes, %.1f h, seed %llu, %.2f tx/s -> %s\n",
              nodes, hours, static_cast<unsigned long long>(seed), tx_rate,
              out_dir.c_str());
  core::Experiment exp{cfg};
  exp.Run();

  measure::Dataset dataset;
  for (const auto& obs : exp.observers())
    dataset.vantages.push_back(measure::SnapshotObserver(*obs));
  dataset.catalog = measure::BuildCatalog(exp.minted(), cfg.pools);

  std::string error;
  if (!measure::WriteDataset(out_dir, dataset, &error)) {
    obs::LogError("measure", "failed to write dataset: %s", error.c_str());
    return 1;
  }
  // Provenance manifest (+ any enabled telemetry streams) beside the logs,
  // so the dataset is self-describing: which config, seed, build wrote it.
  if (!core::WriteRunArtifacts(exp, out_dir, "ethmeasure_collect", &error)) {
    obs::LogError("measure", "failed to write run artifacts: %s",
                  error.c_str());
    return 1;
  }
  if (const std::string drops = exp.network().RenderDropReport();
      !drops.empty())
    std::printf("%s\n", drops.c_str());

  std::size_t block_records = 0, tx_records = 0;
  for (const auto& vantage : dataset.vantages) {
    block_records += vantage.block_arrivals.size();
    tx_records += vantage.tx_arrivals.size();
  }
  std::printf("wrote %zu vantage logs (%zu block records, %zu tx records), "
              "catalog of %zu blocks\n",
              dataset.vantages.size(), block_records, tx_records,
              dataset.catalog.size());
  return 0;
}
