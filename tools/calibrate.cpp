// Calibration probe: runs a mid-sized study and prints the headline numbers
// the presets are tuned against. Not part of the shipped benches; kept for
// re-tuning when model parameters change.
//
// Usage: calibrate [hours] [seed] [sweep_seeds]
// With sweep_seeds > 1 the run fans out over SeedSweepRunner (consecutive
// seeds) and the headline numbers are merged across seeds; the per-block
// diagnostics at the bottom always describe the first seed's run.
#include <array>
#include <chrono>
#include <unordered_map>
#include <cstdio>
#include <cstdlib>

#include "analysis/forks.hpp"
#include "analysis/geo.hpp"
#include "analysis/merge.hpp"
#include "analysis/ordering.hpp"
#include "analysis/propagation.hpp"
#include "analysis/redundancy.hpp"
#include "core/experiment.hpp"
#include "core/provenance.hpp"
#include "core/sweep.hpp"
#include "obs/diag.hpp"

using namespace ethsim;

namespace {

analysis::StudyInputs InputsFor(const core::Experiment& exp) {
  analysis::StudyInputs inputs;
  for (const auto& obs : exp.observers()) inputs.observers.push_back(obs.get());
  inputs.minted = &exp.minted();
  inputs.pools = &exp.config().pools;
  inputs.reference = &exp.reference_tree();
  return inputs;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(150);
  cfg.duration = Duration::Hours(2);
  cfg.workload.rate_per_sec = 1.0;
  if (argc > 1) cfg.duration = Duration::Hours(std::atof(argv[1]));
  if (argc > 2) cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[2]));
  std::size_t seed_count = 1;
  if (argc > 3 && std::atoll(argv[3]) > 0)
    seed_count = static_cast<std::size_t>(std::atoll(argv[3]));
  // ETHSIM_METRICS/ETHSIM_TRACE/ETHSIM_PROFILE gate telemetry; sweep members
  // each own a registry, merged below in seed order.
  cfg.telemetry = obs::TelemetryConfig::FromEnv();

  core::SeedSweepRunner runner{};
  const auto seeds = core::ConsecutiveSeeds(cfg.seed, seed_count);
  const auto t0 = std::chrono::steady_clock::now();
  const auto runs = runner.RunExperiments(cfg, seeds);
  const auto wall =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0).count();

  std::uint64_t events = 0;
  std::size_t minted = 0;
  for (const auto& run : runs) {
    events += run->simulator().events_executed();
    minted += run->minted().size();
  }
  std::printf("wall=%lldms seeds=%zu threads=%zu events=%llu minted=%zu head=%llu\n",
              static_cast<long long>(wall), seeds.size(), runner.threads(),
              static_cast<unsigned long long>(events), minted,
              static_cast<unsigned long long>(
                  runs[0]->reference_tree().head_number() - cfg.genesis_number));
  std::printf("config_digest=%.16s determinism_digest[seed %llu]=%.16s\n",
              ToHex(core::ConfigDigest(cfg)).c_str(),
              static_cast<unsigned long long>(seeds[0]),
              ToHex(core::DeterminismDigest(*runs[0])).c_str());

  // Telemetry artifacts: thread-count-invariant merged metrics plus the
  // first seed's full artifact set.
  if (runs[0]->telemetry() != nullptr) {
    std::string dir = cfg.telemetry.output_dir;
    if (dir.empty()) dir = "calibrate-telemetry";
    std::string error;
    if (!core::WriteRunArtifacts(*runs[0], dir, "calibrate", &error)) {
      obs::LogError("calibrate", "telemetry artifacts: %s", error.c_str());
      return 1;
    }
    if (runs[0]->telemetry()->metrics() != nullptr) {
      const obs::MetricsRegistry merged = core::MergeSweepMetrics(runs);
      std::printf("telemetry -> %s/ (merged registry: %zu instruments over "
                  "%zu seeds)\n",
                  dir.c_str(), merged.size(), runs.size());
    }
  }
  for (const auto& run : runs) {
    if (const std::string drops = run->network().RenderDropReport();
        !drops.empty())
      std::printf("seed %llu: %s\n",
                  static_cast<unsigned long long>(run->config().seed),
                  drops.c_str());
  }

  std::vector<analysis::StudyInputs> all_inputs;
  for (const auto& run : runs) all_inputs.push_back(InputsFor(*run));

  std::vector<analysis::PropagationResult> prop_parts, txprop_parts;
  std::vector<analysis::GeoResult> geo_parts;
  std::vector<analysis::ForkCensus> census_parts;
  for (const auto& inputs : all_inputs) {
    prop_parts.push_back(analysis::BlockPropagationDelays(inputs.observers));
    txprop_parts.push_back(analysis::TxPropagationDelays(inputs.observers));
    geo_parts.push_back(analysis::FirstObservationShares(inputs.observers));
    census_parts.push_back(analysis::ComputeForkCensus(inputs));
  }
  std::vector<analysis::OneMinerForkCensus> omf_parts;
  for (std::size_t i = 0; i < all_inputs.size(); ++i)
    omf_parts.push_back(
        analysis::ComputeOneMinerForks(all_inputs[i], census_parts[i]));

  const auto prop = analysis::MergePropagation(prop_parts);
  std::printf("fig1 block prop: median=%.1fms mean=%.1fms p95=%.1fms p99=%.1fms n=%zu (paper 74/109/211/317)\n",
              prop.median_ms, prop.mean_ms, prop.p95_ms, prop.p99_ms,
              prop.delays_ms.count());

  const auto txprop = analysis::MergePropagation(txprop_parts);
  std::printf("tx prop: median=%.1fms mean=%.1fms n=%zu\n", txprop.median_ms,
              txprop.mean_ms, txprop.delays_ms.count());

  const auto geo = analysis::MergeGeoResults(geo_parts);
  std::printf("fig2 first-obs:");
  for (const auto& share : geo.shares)
    std::printf(" %s=%.1f%%(±%.1f)", share.vantage.c_str(), share.share * 100,
                share.uncertain_share * 100);
  std::printf("  (paper EA~40 NA~10)\n");

  const auto census = analysis::MergeForkCensus(census_parts);
  std::printf("forks: total_blocks=%zu main=%.2f%% recognized=%.2f%% unrecognized=%.2f%% events=%zu (paper 92.81/6.97/0.22)\n",
              census.total_blocks, census.main_share * 100,
              census.recognized_share * 100, census.unrecognized_share * 100,
              census.fork_events);
  for (const auto& row : census.by_length)
    std::printf("  len=%zu total=%zu recognized=%zu\n", row.length, row.total,
                row.recognized);

  const auto omf = analysis::MergeOneMinerForks(omf_parts, census);
  std::printf("one-miner forks: events=%zu share_of_forks=%.1f%% recognized=%.0f%% same_txset=%.0f%% (paper 11%%/98%%/56%%)\n",
              omf.events, omf.share_of_all_forks * 100,
              omf.recognized_extra_share * 100, omf.same_txset_share * 100);

  // Ordering has no cross-seed merge (delay sets are per-commit-path); report
  // the first seed's run, which matches the historical single-run probe.
  const core::Experiment& exp = *runs[0];
  const analysis::StudyInputs& inputs = all_inputs[0];
  const auto ordering = analysis::TransactionOrdering(inputs);
  std::printf("ordering[seed %llu]: committed=%zu ooo=%.2f%% med_in=%.0fs med_ooo=%.0fs (paper 11.54%%, 189/192)\n",
              static_cast<unsigned long long>(seeds[0]),
              ordering.committed_txs, ordering.out_of_order_share * 100,
              ordering.in_order_delay_s.empty() ? 0 : ordering.in_order_delay_s.Median(),
              ordering.out_of_order_delay_s.empty() ? 0 : ordering.out_of_order_delay_s.Median());

  // Diagnostic: origin-region x winning-vantage matrix. Requires access to
  // the release gateway's region; approximate with the pool's weighted-top
  // gateway region via the mint record's pool index.
  {
    std::printf("observer peers:");
    for (const auto& obs : exp.observers())
      std::printf(" %s=%zu", obs->name().c_str(), obs->node()->peer_count());
    std::printf("\n");

    // winner per block hash
    std::unordered_map<Hash32, std::size_t> winner;
    for (const auto& record : *inputs.minted) {
      TimePoint best;
      bool any = false;
      std::size_t who = 0;
      for (std::size_t i = 0; i < inputs.observers.size(); ++i) {
        const auto& m = inputs.observers[i]->first_block_arrival();
        const auto it = m.find(record.block->hash);
        if (it == m.end()) continue;
        if (!any || it->second < best) { best = it->second; who = i; any = true; }
      }
      if (any) winner[record.block->hash] = who;
    }
    // per-pool wins
    std::vector<std::array<int,5>> table(cfg.pools.size(), {0,0,0,0,0});
    for (const auto& record : *inputs.minted) {
      auto it = winner.find(record.block->hash);
      if (it == winner.end()) continue;
      table[record.pool_index][it->second]++;
      table[record.pool_index][4]++;
    }
    for (std::size_t p = 0; p < cfg.pools.size(); ++p) {
      if (table[p][4] < 5) continue;
      std::printf("pool %-18s n=%3d  NA=%2d EA=%2d WE=%2d CE=%2d\n",
                  cfg.pools[p].name.c_str(), table[p][4], table[p][0],
                  table[p][1], table[p][2], table[p][3]);
    }
  }
  // Gateway adjacency to observers.
  {
    std::size_t idx = 0;
    for (const auto& pool : cfg.pools) {
      for (const auto& gw : pool.gateways) {
        const auto& node = exp.nodes()[idx++];
        std::printf("gw %-18s %-3s peers=%2zu adj:", pool.name.c_str(),
                    net::RegionShortName(gw.region).data(), node->peer_count());
        for (const auto& obs : exp.observers())
          std::printf(" %s=%d", obs->name().c_str(),
                      node->ConnectedTo(*obs->node()) ? 1 : 0);
        std::printf("\n");
      }
    }
  }
  return 0;
}
