// ethsim_fuzz: deterministic scenario fuzzer over the full simulator stack.
//
//   ethsim_fuzz --runs 8 --seed 1 --out fuzz-out
//       Generate 8 valid-but-adversarial configs from seed 1, run each,
//       check every cross-module oracle and metamorphic relation, shrink
//       any failure, and write fuzz_report.jsonl (+ repro-N.json per
//       failure) into fuzz-out. Exit 0 when clean, 1 on any failure.
//
//   ethsim_fuzz --repro fuzz-out/repro-3.json
//       Rebuild the shrunk failing config a previous run minimized
//       (regenerate the scenario, replay the mutation trace) and re-check
//       the failed oracle. Exit 1 while the bug still reproduces, 0 once
//       it passes.
//
// Flags default from the CI knobs ETHSIM_FUZZ_RUNS / ETHSIM_FUZZ_SEED /
// ETHSIM_FUZZ_OUT when set. --inject-failure <oracle> is the test-only hook
// that makes the named oracle fail on every scenario — it exists so the
// pipeline (catch -> report -> shrink -> repro) can be exercised without
// planting a real bug.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/fuzz.hpp"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ethsim_fuzz [options]\n"
      "  --runs N             scenarios to generate (default 8, env "
      "ETHSIM_FUZZ_RUNS)\n"
      "  --seed S             fuzz stream seed (default 1, env "
      "ETHSIM_FUZZ_SEED)\n"
      "  --out DIR            report/repro directory (default fuzz-out, env "
      "ETHSIM_FUZZ_OUT)\n"
      "  --max-nodes N        upper bound on plain nodes (default 24)\n"
      "  --max-minutes M      upper bound on simulated minutes (default 10)\n"
      "  --no-metamorphic     skip the paired-run relation suite\n"
      "  --shrink-evals N     probe budget per shrink (default 32)\n"
      "  --inject-failure O   test-only: force oracle O to fail\n"
      "  --repro FILE         replay a repro file instead of fuzzing\n");
}

std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0'
             ? std::strtoull(value, nullptr, 10)
             : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  ethsim::check::FuzzOptions options;
  options.runs = static_cast<std::size_t>(EnvU64("ETHSIM_FUZZ_RUNS", 8));
  options.seed = EnvU64("ETHSIM_FUZZ_SEED", 1);
  if (const char* out = std::getenv("ETHSIM_FUZZ_OUT");
      out != nullptr && out[0] != '\0')
    options.out_dir = out;
  std::string repro_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ethsim_fuzz: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--runs")
      options.runs =
          static_cast<std::size_t>(std::strtoull(next("--runs"), nullptr, 10));
    else if (arg == "--seed")
      options.seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (arg == "--out")
      options.out_dir = next("--out");
    else if (arg == "--max-nodes")
      options.scenario.max_nodes = static_cast<std::size_t>(
          std::strtoull(next("--max-nodes"), nullptr, 10));
    else if (arg == "--max-minutes")
      options.scenario.max_minutes =
          std::strtoll(next("--max-minutes"), nullptr, 10);
    else if (arg == "--no-metamorphic")
      options.metamorphic = false;
    else if (arg == "--shrink-evals")
      options.shrink_evaluations = static_cast<std::size_t>(
          std::strtoull(next("--shrink-evals"), nullptr, 10));
    else if (arg == "--inject-failure")
      options.oracles.inject_failure = next("--inject-failure");
    else if (arg == "--repro")
      repro_path = next("--repro");
    else {
      std::fprintf(stderr, "ethsim_fuzz: unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (options.scenario.max_nodes < options.scenario.min_nodes)
    options.scenario.min_nodes = options.scenario.max_nodes;
  if (options.scenario.max_minutes < options.scenario.min_minutes)
    options.scenario.min_minutes = options.scenario.max_minutes;

  if (!repro_path.empty()) {
    ethsim::check::ReproSpec spec;
    std::string error;
    if (!ethsim::check::ReadRepro(repro_path, &spec, &error)) {
      std::fprintf(stderr, "ethsim_fuzz: %s\n", error.c_str());
      return 2;
    }
    return ethsim::check::RunRepro(spec, options.oracles);
  }

  const ethsim::check::FuzzOutcome outcome = ethsim::check::RunFuzz(options);
  std::fprintf(stderr, "[fuzz] %zu scenarios, %zu failing; report: %s\n",
               outcome.scenarios, outcome.failures,
               outcome.report_path.c_str());
  return outcome.failures == 0 ? 0 : 1;
}
