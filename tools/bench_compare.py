#!/usr/bin/env python3
"""Compare a fresh micro_substrate bench summary against the tracked
BENCH_engine.json and fail on regressions.

Usage:
    tools/bench_compare.py CURRENT.json [BASELINE.json]
                           [--threshold 0.20] [--min-time-ns 10000]
                           [--json SUMMARY.json]

CURRENT is a JSON file with a "benchmarks" section of the shape the
micro_substrate reporter writes (ETHSIM_BENCH_JSON=...):

    {"benchmarks": {"BM_Name/arg": {"real_time_ns": ..,
                                    "items_per_second": ..}, ...}}

BASELINE defaults to BENCH_engine.json next to the repo root (one directory
above this script). Only benchmarks present in BOTH files are compared —
additions and removals are reported but never fail the run. A benchmark
regresses when its real_time_ns grew by more than THRESHOLD (default 20%)
AND the absolute time is above --min-time-ns (sub-10us timings are noise at
CI's short --benchmark_min_time).

The baseline additionally carries record-only-telemetry parity sections
(`telemetry_off_parity`, `provenance_off_parity`): interleaved ratios of the
instrumented engine with the gate OFF against the pre-instrumentation engine.
Those ratios are this repo's "observability is free when disabled" contract,
so they are gated too — any tracked ratio above --parity-limit (default 1.05)
fails the run. Regenerating the baseline with a slow disabled path is not a
way around the contract.

Exit status: 0 = within threshold, 1 = regression or parity violation,
2 = usage/IO error.
"""

import argparse
import json
import os
import sys


def load_doc(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench_compare: cannot load {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def load_benchmarks(path, doc=None):
    if doc is None:
        doc = load_doc(path)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        # The resilience bench writes a "resilience" section instead of
        # "benchmarks"; there is no tracked baseline schema for it yet, so a
        # resilience-only file is informational, not comparable. Skip
        # gracefully rather than failing the CI job that produced it.
        if isinstance(doc.get("resilience"), dict):
            print(f"bench_compare: {path} contains only a 'resilience' "
                  "section (no baseline schema yet) — skipping comparison")
            sys.exit(0)
        print(f"bench_compare: {path} has no 'benchmarks' section",
              file=sys.stderr)
        sys.exit(2)
    return benchmarks


def check_parity(doc, path, limit):
    """Gate the tracked *_off_parity sections against the parity limit.

    Each section maps benchmark names to the ratio (gate OFF / engine without
    the instrumentation at all). Strings like "method"/"note" are annotation,
    not measurements. Returns (violation count, per-section summary) after
    printing the violations.
    """
    violations = 0
    summary = {}
    for section in sorted(k for k in doc if k.endswith("_off_parity")):
        entries = doc[section]
        if not isinstance(entries, dict):
            continue
        measured = {k: v for k, v in entries.items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)}
        if not measured:
            print(f"bench_compare: {section} in {path} has no numeric "
                  "ratios", file=sys.stderr)
            violations += 1
            summary[section] = {"worst": None, "violations": 1}
            continue
        worst = max(measured.values())
        status = "ok" if worst <= limit else "VIOLATION"
        print(f"  parity: {section:24s} worst {worst:.3f} "
              f"(limit {limit:.2f}) {status}")
        section_violations = 0
        for name, ratio in sorted(measured.items()):
            if ratio > limit:
                print(f"bench_compare: {section}[{name}] = {ratio:.3f} "
                      f"exceeds --parity-limit {limit:.2f}", file=sys.stderr)
                violations += 1
                section_violations += 1
        summary[section] = {"worst": worst, "violations": section_violations}
    return violations, summary


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated bench JSON")
    parser.add_argument("baseline", nargs="?",
                        default=os.path.join(
                            os.path.dirname(os.path.dirname(
                                os.path.abspath(__file__))),
                            "BENCH_engine.json"),
                        help="tracked baseline (default: repo BENCH_engine.json)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    parser.add_argument("--min-time-ns", type=float, default=10_000,
                        help="ignore benchmarks faster than this (noise floor)")
    parser.add_argument("--parity-limit", type=float, default=1.05,
                        help="max allowed tracked *_off_parity ratio "
                             "(default 1.05)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="BENCH",
                        help="benchmark that must be present in BOTH files; "
                             "missing-from-either normally only prints a "
                             "note, which would silently un-gate a tracked "
                             "benchmark that stopped running (repeatable)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write a machine-readable comparison "
                             "summary to PATH (written on failure too, so CI "
                             "can upload it as an artifact either way)")
    args = parser.parse_args()

    current = load_benchmarks(args.current)
    baseline_doc = load_doc(args.baseline)
    baseline = load_benchmarks(args.baseline, baseline_doc)
    parity_violations, parity_summary = check_parity(baseline_doc,
                                                     args.baseline,
                                                     args.parity_limit)

    missing_required = [name for name in args.require
                        if name not in current or name not in baseline]
    if missing_required:
        for name in missing_required:
            where = []
            if name not in current:
                where.append(args.current)
            if name not in baseline:
                where.append(args.baseline)
            print(f"bench_compare: required benchmark {name} missing from "
                  f"{' and '.join(where)}", file=sys.stderr)
        sys.exit(1)

    common = sorted(set(current) & set(baseline))
    if not common:
        print("bench_compare: no common benchmarks between "
              f"{args.current} and {args.baseline}", file=sys.stderr)
        sys.exit(2)
    for name in sorted(set(baseline) - set(current)):
        print(f"  note: {name} only in baseline (not run)")
    for name in sorted(set(current) - set(baseline)):
        print(f"  note: {name} only in current (no baseline yet)")

    regressions = []
    comparisons = {}
    print(f"{'benchmark':44s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for name in common:
        base_ns = baseline[name].get("real_time_ns")
        cur_ns = current[name].get("real_time_ns")
        if not base_ns or not cur_ns:
            print(f"{name:44s} {'-':>12s} {'-':>12s} {'n/a':>7s}")
            continue
        ratio = cur_ns / base_ns
        flag = ""
        if ratio > 1.0 + args.threshold and cur_ns >= args.min_time_ns:
            regressions.append((name, ratio))
            flag = "  << REGRESSION"
        elif ratio < 1.0 - args.threshold:
            flag = "  (faster)"
        print(f"{name:44s} {base_ns:12.0f} {cur_ns:12.0f} {ratio:7.2f}{flag}")
        comparisons[name] = {"baseline_ns": base_ns, "current_ns": cur_ns,
                             "ratio": round(ratio, 4),
                             "regression": bool(flag == "  << REGRESSION")}

    if regressions:
        status = "regression"
    elif parity_violations:
        status = "parity_violation"
    else:
        status = "ok"
    if args.json:
        summary = {
            "schema": "ethsim-bench-compare-v1",
            "status": status,
            "current": args.current,
            "baseline": args.baseline,
            "threshold": args.threshold,
            "min_time_ns": args.min_time_ns,
            "parity_limit": args.parity_limit,
            "benchmarks": comparisons,
            "regressions": [{"name": n, "ratio": round(r, 4)}
                            for n, r in regressions],
            "only_in_baseline": sorted(set(baseline) - set(current)),
            "only_in_current": sorted(set(current) - set(baseline)),
            "parity": parity_summary,
        }
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"bench_compare: cannot write {args.json}: {exc}",
                  file=sys.stderr)
            sys.exit(2)
        print(f"  summary written to {args.json}")

    if regressions:
        print(f"\nbench_compare: {len(regressions)} benchmark(s) slower than "
              f"baseline by >{args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline", file=sys.stderr)
        print("If intentional, regenerate BENCH_engine.json on comparable "
              "hardware and explain in the PR.", file=sys.stderr)
        sys.exit(1)
    if parity_violations:
        print(f"\nbench_compare: {parity_violations} tracked parity ratio(s) "
              f"above --parity-limit {args.parity_limit:.2f} — the disabled "
              "telemetry/provenance path must stay near-free", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_compare: OK — {len(common)} benchmark(s) within "
          f"{args.threshold:.0%} of baseline")


if __name__ == "__main__":
    main()
