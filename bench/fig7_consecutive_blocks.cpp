// Figure 7: sequences of consecutive main-chain blocks per pool. Two modes:
// a month-scale winner-process sample (201,086 blocks, like the paper's
// observation window) and a full network simulation cross-check that the
// overlay does not distort the sequence statistics.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Fig 7 - consecutive main blocks per pool"};

  // Month-scale winner process (network-free, as justified in DESIGN.md:
  // run statistics depend only on the per-block winner distribution).
  const auto pools = miner::PaperPools();
  const auto winners = analysis::SampleWinners(pools, 201'086, Rng{11});
  const auto month = analysis::SequencesFromWinners(winners, pools);
  std::printf("%s\n", analysis::RenderFig7(month).c_str());

  // Cross-check on a full overlay simulation: same CDF shape at small scale.
  core::ExperimentConfig cfg = core::presets::SmallStudy(40);
  cfg.duration = Duration::Hours(8);
  cfg.workload.rate_per_sec = 0;
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);
  const auto inputs = bench::InputsFor(exp);
  const auto simulated = analysis::ConsecutiveMinerSequences(inputs);
  std::printf("full-simulation cross-check (%zu blocks):\n%s\n",
              simulated.total_main_blocks,
              analysis::RenderFig7(simulated).c_str());
  return 0;
}
