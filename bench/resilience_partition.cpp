// Resilience scenario: a regional partition splits East Asia + Southeast
// Asia + Oceania from the rest of the overlay for the middle third of the
// run, then heals. The same (config, seed) runs once with the fault plan and
// once without; the resilience analysis slices both against the partition
// window and reports the fork-rate and propagation-p95 inflation the split
// caused — the quantitative form of the paper's §III-A2 argument that gossip
// redundancy is what buys partition tolerance.
//
// Env knobs (all optional):
//   ETHSIM_RESILIENCE_NODES    plain-node count          (default 60)
//   ETHSIM_RESILIENCE_MINUTES  simulated minutes         (default 30)
//   ETHSIM_RESILIENCE_SEED     experiment seed           (default 42)
//   ETHSIM_BENCH_JSON          write a machine-readable summary here
//   ETHSIM_METRICS/TRACE/...   standard telemetry gates (faulted run only)
#include <cstdio>
#include <string>

#include "analysis/forks.hpp"
#include "analysis/resilience.hpp"
#include "bench_util.hpp"
#include "fault/controller.hpp"

using namespace ethsim;

namespace {

void WriteJsonSummary(const analysis::ResilienceReport& report,
                      const fault::FaultStats& stats) {
  const char* env = std::getenv("ETHSIM_BENCH_JSON");
  if (env == nullptr || env[0] == '\0') return;
  std::FILE* f = std::fopen(env, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "resilience_partition: cannot write %s\n", env);
    return;
  }
  // A "resilience" section (not "benchmarks"): bench_compare.py skips it
  // until a baseline schema exists.
  std::fprintf(f,
               "{\n  \"resilience\": {\n"
               "    \"window_start_s\": %.0f,\n"
               "    \"window_end_s\": %.0f,\n"
               "    \"faulted\": {\"minted\": %zu, \"forked\": %zu, "
               "\"fork_rate\": %.4f, \"delay_p95_ms\": %.1f},\n"
               "    \"control\": {\"minted\": %zu, \"forked\": %zu, "
               "\"fork_rate\": %.4f, \"delay_p95_ms\": %.1f},\n"
               "    \"fork_rate_inflation\": %.3f,\n"
               "    \"delay_p95_inflation\": %.3f,\n"
               "    \"partitions_healed\": %llu\n"
               "  }\n}\n",
               report.faulted.start.seconds(), report.faulted.end.seconds(),
               report.faulted.blocks_minted, report.faulted.fork_blocks,
               report.faulted.fork_rate, report.faulted.delay_p95_ms,
               report.control.blocks_minted, report.control.fork_blocks,
               report.control.fork_rate, report.control.delay_p95_ms,
               report.fork_rate_inflation, report.delay_p95_inflation,
               static_cast<unsigned long long>(stats.partitions_healed));
  std::fclose(f);
  std::fprintf(stderr, "resilience_partition: wrote %s\n", env);
}

}  // namespace

int main() {
  bench::Banner banner{"Resilience - regional partition vs fault-free control"};

  const std::size_t nodes = bench::EnvSizeT("ETHSIM_RESILIENCE_NODES", 60);
  const std::size_t minutes = bench::EnvSizeT("ETHSIM_RESILIENCE_MINUTES", 30);
  const std::uint64_t seed = bench::EnvSizeT("ETHSIM_RESILIENCE_SEED", 42);

  core::ExperimentConfig cfg = core::presets::SmallStudy(nodes);
  cfg.duration = Duration::Minutes(static_cast<double>(minutes));
  cfg.seed = seed;

  // Partition window: the middle third of the run, Asia-Pacific vs the rest.
  const TimePoint start = TimePoint::FromMicros(cfg.duration.micros() / 3);
  const Duration window = Duration::Micros(cfg.duration.micros() / 3);
  const std::uint32_t apac_mask =
      (1u << static_cast<unsigned>(net::Region::EasternAsia)) |
      (1u << static_cast<unsigned>(net::Region::SoutheastAsia)) |
      (1u << static_cast<unsigned>(net::Region::Oceania));

  core::ExperimentConfig faulted_cfg = cfg;
  faulted_cfg.fault_plan.RegionalPartition(start, window, apac_mask);
  bench::ApplyTelemetryEnv(faulted_cfg);  // telemetry on the faulted run only

  std::printf("faulted run (partition [%.0f s, %.0f s), mask EA|SEA|OC)...\n",
              start.seconds(), (start + window).seconds());
  core::Experiment faulted{faulted_cfg};
  faulted.Run();
  bench::PrintRunSummary(faulted);

  std::printf("control run (identical config + seed, empty fault plan)...\n");
  core::Experiment control{cfg};
  control.Run();
  bench::PrintRunSummary(control);

  const analysis::ResilienceReport report = analysis::CompareResilience(
      bench::InputsFor(faulted), bench::InputsFor(control), start,
      start + window);
  std::printf("%s\n", analysis::RenderResilience(report).c_str());

  // Whole-run fork census for context (the window slice is the headline).
  const analysis::ForkCensus faulted_census =
      analysis::ComputeForkCensus(bench::InputsFor(faulted));
  const analysis::ForkCensus control_census =
      analysis::ComputeForkCensus(bench::InputsFor(control));
  std::printf(
      "whole-run fork share: faulted %.2f%% vs control %.2f%% "
      "(%zu vs %zu blocks)\n",
      (1.0 - faulted_census.main_share) * 100.0,
      (1.0 - control_census.main_share) * 100.0, faulted_census.total_blocks,
      control_census.total_blocks);

  const fault::FaultController* controller = faulted.fault();
  const fault::FaultStats& stats = controller->stats();
  std::printf("fault controller: %llu event(s) injected, %llu heal(s)\n",
              static_cast<unsigned long long>(stats.total_injected()),
              static_cast<unsigned long long>(stats.partitions_healed));
  const std::string drops = faulted.network().RenderDropReport();
  if (!drops.empty()) std::printf("faulted run %s\n", drops.c_str());

  std::printf(
      "\nexpected shape: blocks minted during the split fork at a multiple\n"
      "of the baseline rate (each side extends its own chain), and the\n"
      "cross-vantage p95 inflates because APAC vantages only hear the other\n"
      "side's blocks after the heal; the drop census attributes every lost\n"
      "message to the partition.\n");

  WriteJsonSummary(report, stats);
  bench::WriteBenchArtifacts(faulted, "resilience_partition");
  return 0;
}
