// Figure 4: transaction inclusion time and commit time under 3/12/15/36
// block-confirmation rules.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Fig 4 - transaction inclusion and commit times"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(40);
  cfg.duration = Duration::Hours(3);  // 36-conf needs ~8 min of headroom
  cfg.workload.rate_per_sec = 1.5;
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);

  const auto inputs = bench::InputsFor(exp);
  std::printf(
      "%s\n",
      analysis::RenderFig4(analysis::TransactionCommitTimes(inputs)).c_str());
  return 0;
}
