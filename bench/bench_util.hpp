// Shared glue for the per-figure bench binaries: standard banner, timing,
// and StudyInputs assembly from a finished experiment.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/inputs.hpp"
#include "core/experiment.hpp"
#include "core/provenance.hpp"
#include "obs/telemetry.hpp"

namespace ethsim::bench {

// Unsigned env override with a default (used for sweep seed/thread counts).
inline std::size_t EnvSizeT(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

// Reads the ETHSIM_METRICS / ETHSIM_TRACE / ETHSIM_PROFILE gates into the
// bench's config. Off by default; enabling them never changes the numbers a
// bench prints (the determinism contract, see DESIGN.md § "Telemetry").
inline void ApplyTelemetryEnv(core::ExperimentConfig& cfg) {
  cfg.telemetry = obs::TelemetryConfig::FromEnv();
}

// When any telemetry stream is enabled, writes manifest.json + the stream
// artifacts beside the bench output (ETHSIM_TELEMETRY_DIR or
// "<tool>-telemetry"). Silent no-op with telemetry off, warning on I/O
// failure — a bench's tables should not die because a disk filled up.
inline void WriteBenchArtifacts(const core::Experiment& exp,
                                const std::string& tool) {
  if (exp.telemetry() == nullptr) return;
  std::string dir = exp.config().telemetry.output_dir;
  if (dir.empty()) dir = tool + "-telemetry";
  std::string error;
  if (!core::WriteRunArtifacts(exp, dir, tool, &error))
    std::fprintf(stderr, "warning: telemetry artifacts: %s\n", error.c_str());
  else
    std::printf("telemetry -> %s/ (config %.16s, seed %llu)\n", dir.c_str(),
                ToHex(core::ConfigDigest(exp.config())).c_str(),
                static_cast<unsigned long long>(exp.config().seed));
}

inline analysis::StudyInputs InputsFor(const core::Experiment& exp) {
  analysis::StudyInputs inputs;
  for (const auto& obs : exp.observers()) inputs.observers.push_back(obs.get());
  inputs.minted = &exp.minted();
  inputs.pools = &exp.config().pools;
  inputs.reference = &exp.reference_tree();
  return inputs;
}

class Banner {
 public:
  explicit Banner(const std::string& title) : start_(Clock::now()) {
    std::printf("\n############ %s ############\n\n", title.c_str());
  }
  ~Banner() {
    const double s =
        std::chrono::duration<double>(Clock::now() - start_).count();
    std::printf("[bench complete in %.1f s]\n", s);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

inline void PrintRunSummary(core::Experiment& exp) {
  const auto& cfg = exp.config();
  std::printf(
      "run: %zu nodes + %zu vantages, %.1f sim-hours, %zu blocks minted, "
      "head height +%llu, %llu events\n\n",
      cfg.peer_nodes, cfg.vantages.size(), cfg.duration.seconds() / 3600.0,
      exp.minted().size(),
      static_cast<unsigned long long>(exp.reference_tree().head_number() -
                                      cfg.genesis_number),
      static_cast<unsigned long long>(exp.simulator().events_executed()));
}

}  // namespace ethsim::bench
