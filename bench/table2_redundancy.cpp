// Table II: redundant block receptions at a default-configured (25-peer)
// client — the paper's May 2-9 subsidiary measurement.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Table II - redundant block receptions (25 peers)"};

  core::ExperimentConfig cfg = core::presets::DefaultPeersStudy();
  cfg.duration = Duration::Hours(3);
  cfg.workload.rate_per_sec = 0;
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);

  const auto& observer = *exp.observers().front();
  const auto result = analysis::BlockReceptionRedundancy(observer);
  const std::size_t network_size = exp.nodes().size();
  std::printf("%s\n",
              analysis::RenderTable2(result, network_size).c_str());
  return 0;
}
