// Table II: redundant block receptions at a default-configured (25-peer)
// client — the paper's May 2-9 subsidiary measurement.
//
// With ETHSIM_PROVENANCE=1 the bench additionally reconciles the observer-log
// computation against the provenance-derived one (RedundancyFromProvenance):
// the two count the same delivered messages under the same settle-window
// exclusion and must agree bitwise. A mismatch is a bug in one of the two
// pipelines and fails the bench.
#include <cstring>

#include "analysis/dissemination.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

namespace {

bool SameStats(const analysis::RedundancyStats& a,
               const analysis::RedundancyStats& b) {
  return std::memcmp(&a.mean, &b.mean, sizeof(double)) == 0 &&
         std::memcmp(&a.median, &b.median, sizeof(double)) == 0 &&
         std::memcmp(&a.top10, &b.top10, sizeof(double)) == 0 &&
         std::memcmp(&a.top1, &b.top1, sizeof(double)) == 0;
}

}  // namespace

int main() {
  bench::Banner banner{"Table II - redundant block receptions (25 peers)"};

  core::ExperimentConfig cfg = core::presets::DefaultPeersStudy();
  cfg.duration = Duration::Hours(3);
  cfg.workload.rate_per_sec = 0;
  bench::ApplyTelemetryEnv(cfg);
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);

  const auto& observer = *exp.observers().front();
  const auto result = analysis::BlockReceptionRedundancy(observer);
  const std::size_t network_size = exp.nodes().size();
  std::printf("%s\n",
              analysis::RenderTable2(result, network_size).c_str());

  // Provenance reconciliation (tentpole contract): the relay-edge log must
  // reproduce the observer-log redundancy numbers bitwise.
  if (exp.telemetry() != nullptr && exp.telemetry()->provenance() != nullptr) {
    const obs::ProvenanceLog& log = exp.telemetry()->provenance()->Finish();
    const auto from_prov = analysis::RedundancyFromProvenance(
        log, observer.node()->host());
    const bool match = from_prov.blocks == result.blocks &&
                       SameStats(from_prov.announcements,
                                 result.announcements) &&
                       SameStats(from_prov.whole_blocks, result.whole_blocks) &&
                       SameStats(from_prov.combined, result.combined);
    std::printf("provenance reconciliation: %zu blocks, combined mean %.3f — "
                "%s\n",
                from_prov.blocks, from_prov.combined.mean,
                match ? "bitwise match" : "MISMATCH");
    if (!match) {
      std::fprintf(stderr,
                   "error: provenance-derived redundancy diverged from the "
                   "observer log (ann %.17g/%.17g whole %.17g/%.17g)\n",
                   from_prov.announcements.mean, result.announcements.mean,
                   from_prov.whole_blocks.mean, result.whole_blocks.mean);
      return 1;
    }
  }
  bench::WriteBenchArtifacts(exp, "table2_redundancy");
  return 0;
}
