// Figure 1 + §III-A1: block propagation delay histogram across the four
// vantages, and the transaction-propagation geographic (non-)effect.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Fig 1 - block propagation delays (4 vantages)"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(150);
  cfg.duration = Duration::Hours(1.5);
  cfg.workload.rate_per_sec = 0.4;  // light tx load for the SIII-A1 claim
  bench::ApplyTelemetryEnv(cfg);
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);
  bench::WriteBenchArtifacts(exp, "fig1_block_propagation");

  const auto inputs = bench::InputsFor(exp);
  const auto blocks = analysis::BlockPropagationDelays(inputs.observers);
  const auto txs = analysis::TxPropagationDelays(inputs.observers);
  const auto tx_rows = analysis::PerVantageTxDelay(inputs.observers);
  std::printf("%s\n", analysis::RenderFig1(blocks, txs, tx_rows).c_str());
  return 0;
}
