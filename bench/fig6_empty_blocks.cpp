// Figure 6 + §III-C3: the empty-block census per mining pool.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Fig 6 - empty blocks per mining pool"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(60);
  cfg.duration = Duration::Hours(9);  // ~2,400 blocks for per-pool counts
  // Mainnet blocks ran ~80% full (SIII-C3): keep transaction supply above
  // per-block capacity so a block is empty only when its pool *chose* to
  // skip packing — otherwise thin-workload "organic" empties drown the
  // deliberate ones the paper measures.
  cfg.workload.rate_per_sec = 0.30;
  cfg.mining.max_block_txs = 3;
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);

  const auto inputs = bench::InputsFor(exp);
  std::printf("%s\n",
              analysis::RenderFig6(analysis::EmptyBlockCensus(inputs)).c_str());
  return 0;
}
