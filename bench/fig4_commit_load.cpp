// Fig 4 under load: commit-time inflation as the offered transaction rate
// rises. Sweeps a load multiplier over a mixed geo-aware workload plan
// (diurnal NA/EA retail, a flat baseline with replace-by-fee, a scheduled
// flash crowd, and closed-loop clients) and prints, per step, the Fig 4
// inclusion/commit quantiles next to the demand reconciliation tables.
#include <vector>

#include "analysis/commit.hpp"
#include "analysis/demand.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

namespace {

workload::WorkloadPlan PlanFor(double load, std::size_t clients) {
  workload::WorkloadPlan plan;
  plan.Poisson("base", 0.6 * load, 150);
  plan.last().fee.replacement_deadline = Duration::Seconds(120);
  plan.Diurnal("retail-na", 0.3 * load, 60, net::Region::NorthAmerica);
  plan.last().account_offset = 150;
  plan.Diurnal("retail-ea", 0.3 * load, 60, net::Region::EasternAsia,
               /*amplitude=*/0.6, /*peak_hour=*/21.0);
  plan.last().account_offset = 210;
  plan.FlashCrowd("drop", 0.2 * load, 40,
                  TimePoint::FromMicros(Duration::Minutes(40).micros()),
                  Duration::Minutes(10), 6.0);
  plan.last().account_offset = 270;
  plan.last().zipf_exponent = 1.2;  // the mint contract's hot senders
  plan.ClosedLoop("users", clients, Duration::Seconds(45), 3);
  plan.last().account_offset = 400;
  return plan;
}

}  // namespace

int main() {
  bench::Banner banner{"Fig 4 under load - commit times vs offered rate"};

  const std::size_t nodes = bench::EnvSizeT("ETHSIM_FIG4_LOAD_NODES", 40);
  const double hours =
      static_cast<double>(bench::EnvSizeT("ETHSIM_FIG4_LOAD_HOURS", 2));
  const std::vector<double> multipliers{0.5, 1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> depths{0, 3, 12};

  for (const double load : multipliers) {
    core::ExperimentConfig cfg = core::presets::SmallStudy(nodes);
    cfg.duration = Duration::Hours(hours);
    cfg.workload_plan =
        PlanFor(load, static_cast<std::size_t>(10.0 * load));
    bench::ApplyTelemetryEnv(cfg);

    std::printf("======== load x%.1f ========\n", load);
    core::Experiment exp{cfg};
    exp.Run();
    bench::PrintRunSummary(exp);

    const auto inputs = bench::InputsFor(exp);
    const auto commit = analysis::TransactionCommitTimes(inputs, depths);
    std::printf("%s\n", analysis::RenderFig4(commit).c_str());
    const auto demand = analysis::AnalyzeDemand(
        inputs, exp.workload().submitted(), exp.workload().plan(), depths);
    std::printf("%s", analysis::RenderDemand(demand).c_str());
    std::printf("closed loop: %llu completed, %llu in flight at run end\n\n",
                static_cast<unsigned long long>(
                    exp.workload().closed_loop_completed()),
                static_cast<unsigned long long>(
                    exp.workload().closed_loop_in_flight()));
    if (demand.committed_total != commit.committed_txs)
      std::fprintf(stderr,
                   "warning: demand committed %llu != commit analysis %llu\n",
                   static_cast<unsigned long long>(demand.committed_total),
                   static_cast<unsigned long long>(commit.committed_txs));
    bench::WriteBenchArtifacts(exp, "fig4_commit_load");
  }
  return 0;
}
