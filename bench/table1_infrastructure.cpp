// Table I: the measurement infrastructure specification, as modeled by the
// simulator's vantage hosts.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Table I - measurement infrastructure"};
  std::printf("%s\n", analysis::RenderTable1().c_str());

  // Show the live configuration of the preset vantages for cross-checking.
  const core::ExperimentConfig cfg = core::presets::PaperStudy();
  std::printf("preset vantages:\n");
  for (const auto& v : cfg.vantages)
    std::printf("  %-3s %-15s dials %zu peers (observer max_peers %zu)\n",
                v.name.c_str(), net::RegionName(v.region).data(),
                v.connect_peers, cfg.observer_config.max_peers);
  return 0;
}
