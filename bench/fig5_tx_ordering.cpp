// Figure 5 + §III-C2: out-of-order transaction receptions and their commit
// penalty.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Fig 5 - commit delay by reception ordering"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(40);
  cfg.duration = Duration::Hours(3);
  cfg.workload.rate_per_sec = 1.5;
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);

  const auto inputs = bench::InputsFor(exp);
  std::printf("%s\n",
              analysis::RenderFig5(analysis::TransactionOrdering(inputs))
                  .c_str());
  return 0;
}
