// Ablation: the difficulty bomb and the Constantinople delay (§III-C1).
// The paper attributes the 2017→2019 commit-time improvement (200 s → 189 s
// for 12 confirmations) to the inter-block time dropping from 14.3 s to
// 13.3 s after EIP-1234 delayed the bomb. This bench runs the same hashrate
// under three historical (height, bomb-delay) settings and reports the
// equilibrium inter-block time each produces.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "common/render.hpp"

using namespace ethsim;

namespace {

struct Era {
  const char* name;
  std::uint64_t height;
  std::uint64_t bomb_delay;
  const char* paper_note;
};

double EquilibriumInterval(const Era& era) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(20);
  cfg.duration = Duration::Hours(16);  // EIP-100 converges ~1/2048 per block
  cfg.workload.rate_per_sec = 0;
  cfg.genesis_number = era.height;
  cfg.mining.difficulty.bomb_delay_blocks = era.bomb_delay;

  core::Experiment exp{cfg};
  exp.Run();

  // Mean interval over the last third of the canonical chain (equilibrated).
  const auto chain_blocks = exp.reference_tree().CanonicalChain();
  const std::size_t n = chain_blocks.size();
  if (n < 30) return 0;
  const std::size_t start = n - n / 3;
  const double span =
      static_cast<double>(chain_blocks[n - 1]->header.timestamp -
                          chain_blocks[start]->header.timestamp);
  return span / static_cast<double>(n - 1 - start);
}

}  // namespace

int main() {
  bench::Banner banner{"Ablation - difficulty bomb vs inter-block time"};

  // Heights/delays per fork history: pre-Byzantium (original bomb already
  // biting), pre-Constantinople (Byzantium's 3M delay aging out), and the
  // paper's measurement window (Constantinople's 5M delay).
  const Era eras[] = {
      {"mid-2017 (pre-Byzantium)", 3'950'000, 0, "Weber et al. era: 14.3 s"},
      {"early-2019 (pre-Constantinople)", 7'270'000, 3'000'000,
       "bomb re-biting: >14 s and climbing"},
      {"study window (post-Constantinople)", 7'479'573, 5'000'000,
       "paper: 13.3 s"},
  };

  render::Table t{{"era", "equilibrium inter-block", "implied 12-conf wait",
                   "paper"}};
  for (const auto& era : eras) {
    const double interval = EquilibriumInterval(era);
    t.AddRow({era.name, render::Fmt(interval, 1) + " s",
              render::Fmt(interval * 12.5, 0) + " s", era.paper_note});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "the bomb term raises the equilibrium interval as a chain ages; each\n"
      "fork's delay resets it toward the bomb-free ~13.2 s fixpoint of\n"
      "EIP-100 — which is exactly the paper's explanation for commit times\n"
      "improving between the 2017 and 2019 measurements.\n");
  return 0;
}
