// Ablation: the paper's §V protocol fix — "forbid referencing uncles mined
// by miners that have already mined a main block of the same height". Runs
// the same study with the rule off (today's Ethereum) and on, and measures
// who captures uncle rewards from one-miner forks.
#include "analysis/report.hpp"
#include "analysis/rewards.hpp"
#include "bench_util.hpp"
#include "common/render.hpp"

using namespace ethsim;

namespace {

struct Outcome {
  std::size_t omf_events = 0;
  double omf_rewarded = 0;       // extras recognized as uncles
  double uncle_rate = 0;         // recognized uncles / total blocks
  std::size_t recognized_uncles = 0;
  double leakage_eth = 0;        // ETH paid to one-miner-fork uncles
};

Outcome RunWithRule(bool forbid) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(60);
  cfg.duration = Duration::Hours(10);
  cfg.workload.rate_per_sec = 0.2;
  cfg.mining.forbid_one_miner_uncles = forbid;
  // Crank one-miner-fork behavior up so the effect is sharply visible.
  for (auto& pool : cfg.pools) {
    if (pool.hashrate_share > 0.10) {
      pool.policy.one_miner_fork_same_txset_rate = 0.03 * 0.56;
      pool.policy.one_miner_fork_distinct_txset_rate = 0.03 * 0.44;
    }
  }

  core::Experiment exp{cfg};
  exp.Run();
  const auto inputs = bench::InputsFor(exp);
  const auto census = analysis::ComputeForkCensus(inputs);
  const auto omf = analysis::ComputeOneMinerForks(inputs, census);
  const auto revenue = analysis::ComputeRevenue(inputs);
  return Outcome{omf.events, omf.recognized_extra_share,
                 census.recognized_share, census.recognized_uncles,
                 revenue.one_miner_uncle_eth};
}

}  // namespace

int main() {
  bench::Banner banner{"Ablation - SV's one-miner-uncle ban"};

  render::Table t{{"protocol", "one-miner forks", "extras rewarded",
                   "recognized uncles", "uncle share", "SV leakage"}};
  const Outcome vanilla = RunWithRule(false);
  const Outcome strict = RunWithRule(true);
  t.AddRow({"Ethereum rules", std::to_string(vanilla.omf_events),
            render::Percent(vanilla.omf_rewarded),
            std::to_string(vanilla.recognized_uncles),
            render::Percent(vanilla.uncle_rate, 2),
            render::Fmt(vanilla.leakage_eth, 2) + " ETH"});
  t.AddRow({"SV ban", std::to_string(strict.omf_events),
            render::Percent(strict.omf_rewarded),
            std::to_string(strict.recognized_uncles),
            render::Percent(strict.uncle_rate, 2),
            render::Fmt(strict.leakage_eth, 2) + " ETH"});
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "the paper's claim: under today's rules one-miner forks collect uncle\n"
      "rewards in ~98%% of cases; the SV ban zeroes that out, deterring the\n"
      "behavior and leaving uncle slots to honest small miners (~1%% of the\n"
      "platform's mining power reclaimed).\n");
  return 0;
}
