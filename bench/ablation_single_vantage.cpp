// Ablation: single- vs multi-vantage measurement (the paper's §I critique of
// prior studies that relied on one observation point). Runs one study and
// compares what each single vantage alone would have concluded about block
// propagation against the four-vantage view — the per-region bias is
// exactly why "multi-observer measurement approaches" matter (§V).
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "common/render.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Ablation - single vs multi vantage measurement"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(150);
  cfg.duration = Duration::Hours(4);
  cfg.workload.rate_per_sec = 0;
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);

  const auto inputs = bench::InputsFor(exp);

  // Multi-vantage ground picture.
  const auto all = analysis::BlockPropagationDelays(inputs.observers);

  // What each vantage alone would report: it can only measure deltas
  // relative to itself, so a single-point study must pair with a second
  // fixed point — emulate the common design of "my node vs network" by
  // pairing each vantage with each other single vantage.
  render::Table t{{"measurement design", "median delay", "p95", "samples"}};
  t.AddRow({"4 vantages (this paper)", render::Fmt(all.median_ms, 1) + " ms",
            render::Fmt(all.p95_ms, 1) + " ms",
            std::to_string(all.delays_ms.count())});
  for (std::size_t i = 0; i < inputs.observers.size(); ++i) {
    for (std::size_t j = i + 1; j < inputs.observers.size(); ++j) {
      analysis::ObserverSet pair{inputs.observers[i], inputs.observers[j]};
      const auto result = analysis::BlockPropagationDelays(pair);
      t.AddRow({std::string("pair ") + inputs.observers[i]->name() + "-" +
                    inputs.observers[j]->name(),
                render::Fmt(result.median_ms, 1) + " ms",
                render::Fmt(result.p95_ms, 1) + " ms",
                std::to_string(result.delays_ms.count())});
    }
  }
  std::printf("%s\n", t.ToString().c_str());

  std::printf(
      "pairs containing EA (where most hashrate releases blocks) see very\n"
      "different delay distributions than intra-European pairs: a single\n"
      "observation point inherits its region's bias, which is the paper's\n"
      "argument (SI limitation (i), SV) for geographically dispersed\n"
      "measurement infrastructure.\n");
  return 0;
}
