// Ablation: block relay policy. Geth's sqrt-push+announce is a tradeoff —
// push-to-all minimizes latency but floods bandwidth; announce-only
// minimizes redundant bytes but pays an extra fetch round-trip everywhere.
// This bench quantifies that tradeoff on the same overlay, justifying the
// default and explaining *why* Table II's redundancy looks the way it does.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "common/render.hpp"

using namespace ethsim;

namespace {

struct Outcome {
  double median_ms = 0;
  double p99_ms = 0;
  double copies_per_block = 0;  // full-block receptions at the probe node
  double announcements = 0;
};

Outcome RunMode(eth::RelayMode mode) {
  core::ExperimentConfig cfg = core::presets::SmallStudy(100);
  cfg.duration = Duration::Hours(2);
  cfg.workload.rate_per_sec = 0;
  cfg.node_config.relay_mode = mode;
  cfg.gateway_config.relay_mode = mode;
  cfg.observer_config.relay_mode = mode;

  core::Experiment exp{cfg};
  exp.Run();

  analysis::ObserverSet observers;
  for (const auto& obs : exp.observers()) observers.push_back(obs.get());
  const auto prop = analysis::BlockPropagationDelays(observers);
  const auto redundancy =
      analysis::BlockReceptionRedundancy(*exp.observers().front());

  return Outcome{prop.median_ms, prop.p99_ms, redundancy.whole_blocks.mean,
                 redundancy.announcements.mean};
}

}  // namespace

int main() {
  bench::Banner banner{"Ablation - block relay policy (sqrt-push vs alternatives)"};

  render::Table t{{"relay mode", "median prop", "p99 prop", "full copies/block",
                   "announcements/block"}};
  const struct {
    const char* name;
    eth::RelayMode mode;
  } modes[] = {
      {"sqrt-push (Geth)", eth::RelayMode::kSqrtPush},
      {"push-to-all", eth::RelayMode::kPushAll},
      {"announce-only", eth::RelayMode::kAnnounceOnly},
  };
  for (const auto& m : modes) {
    const Outcome o = RunMode(m.mode);
    t.AddRow({m.name, render::Fmt(o.median_ms, 1) + " ms",
              render::Fmt(o.p99_ms, 1) + " ms", render::Fmt(o.copies_per_block, 2),
              render::Fmt(o.announcements, 2)});
  }
  std::printf("%s\n", t.ToString().c_str());
  std::printf(
      "expected shape: push-to-all is fastest but multiplies full-block\n"
      "traffic; announce-only pays ~2 extra one-way trips per hop; sqrt-push\n"
      "sits between — the redundancy Table II measures is the price of\n"
      "loss-tolerant, low-latency dissemination.\n");
  return 0;
}
