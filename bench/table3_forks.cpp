// Table III + §III-C4/C5: the fork census — lengths, uncle recognition, and
// one-miner forks.
//
// Runs a multi-seed sweep (default 4 seeds, override with ETHSIM_SWEEP_SEEDS
// / ETHSIM_SWEEP_THREADS) through SeedSweepRunner and merges the per-seed
// censuses deterministically, so the table is pooled over N independent
// simulated months regardless of thread count.
#include <chrono>
#include <cstdlib>

#include "analysis/merge.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "core/sweep.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Table III - fork lengths, recognition, one-miner forks"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(60);
  cfg.duration = Duration::Hours(20);  // ~5,400 blocks: enough length-2 forks
  cfg.workload.rate_per_sec = 0.25;
  bench::ApplyTelemetryEnv(cfg);

  const std::size_t seed_count = bench::EnvSizeT("ETHSIM_SWEEP_SEEDS", 4);
  core::SeedSweepRunner runner{{bench::EnvSizeT("ETHSIM_SWEEP_THREADS", 0)}};
  const auto seeds = core::ConsecutiveSeeds(cfg.seed, seed_count);

  const auto t0 = std::chrono::steady_clock::now();
  const auto runs = runner.RunExperiments(cfg, seeds);
  const double sweep_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("sweep: %zu seeds on %zu threads in %.2f s\n\n", seeds.size(),
              runner.threads(), sweep_s);

  std::vector<analysis::ForkCensus> censuses;
  std::vector<analysis::OneMinerForkCensus> omfs;
  for (const auto& run : runs) {
    bench::PrintRunSummary(*run);
    const auto inputs = bench::InputsFor(*run);
    censuses.push_back(analysis::ComputeForkCensus(inputs));
    omfs.push_back(analysis::ComputeOneMinerForks(inputs, censuses.back()));
  }

  const auto census = analysis::MergeForkCensus(censuses);
  const auto omf = analysis::MergeOneMinerForks(omfs, census);
  std::printf("%s\n", analysis::RenderTable3(census, omf).c_str());

  // Artifact set for the first seed, plus the thread-count-invariant merged
  // registry / time-series when the matching gates are on.
  bench::WriteBenchArtifacts(*runs[0], "table3_forks");
  if (runs[0]->telemetry() != nullptr &&
      runs[0]->telemetry()->metrics() != nullptr) {
    const obs::MetricsRegistry merged = core::MergeSweepMetrics(runs);
    std::printf("merged metrics: %zu instruments over %zu seeds\n",
                merged.size(), runs.size());
  }
  if (runs[0]->telemetry() != nullptr &&
      runs[0]->telemetry()->sampler() != nullptr) {
    const obs::TimeSeriesLog merged = core::MergeSweepTimeSeries(runs);
    std::printf("merged time-series: %zu series x %zu samples over %zu "
                "seeds\n",
                merged.series_count(), merged.sample_count(), runs.size());
  }
  return 0;
}
