// Table III + §III-C4/C5: the fork census — lengths, uncle recognition, and
// one-miner forks.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Table III - fork lengths, recognition, one-miner forks"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(60);
  cfg.duration = Duration::Hours(20);  // ~5,400 blocks: enough length-2 forks
  cfg.workload.rate_per_sec = 0.25;
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);

  const auto inputs = bench::InputsFor(exp);
  const auto census = analysis::ComputeForkCensus(inputs);
  const auto omf = analysis::ComputeOneMinerForks(inputs, census);
  std::printf("%s\n", analysis::RenderTable3(census, omf).c_str());
  return 0;
}
