// Figure 3: first-observation split per origin mining pool — evidence that
// pool gateways are not evenly distributed geographically.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Fig 3 - per-pool first observation by region"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(150);
  cfg.duration = Duration::Hours(16);  // small pools need enough blocks
  cfg.workload.rate_per_sec = 0;
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);

  const auto inputs = bench::InputsFor(exp);
  std::printf("%s\n",
              analysis::RenderFig3(analysis::PoolFirstObservation(inputs))
                  .c_str());
  return 0;
}
