// Figure 2: share of first new-block observations per vantage region.
//
// Pools wins over a multi-seed sweep (default 4 seeds, override with
// ETHSIM_SWEEP_SEEDS / ETHSIM_SWEEP_THREADS) so the per-region shares are
// averaged over independent runs, merged deterministically in seed order.
#include <chrono>

#include "analysis/merge.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "core/sweep.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Fig 2 - first observations per region"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(150);
  cfg.duration = Duration::Hours(10);
  cfg.workload.rate_per_sec = 0;  // blocks only

  const std::size_t seed_count = bench::EnvSizeT("ETHSIM_SWEEP_SEEDS", 4);
  core::SeedSweepRunner runner{{bench::EnvSizeT("ETHSIM_SWEEP_THREADS", 0)}};
  const auto seeds = core::ConsecutiveSeeds(cfg.seed, seed_count);

  const auto t0 = std::chrono::steady_clock::now();
  const auto runs = runner.RunExperiments(cfg, seeds);
  const double sweep_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("sweep: %zu seeds on %zu threads in %.2f s\n\n", seeds.size(),
              runner.threads(), sweep_s);

  std::vector<analysis::GeoResult> parts;
  for (const auto& run : runs) {
    bench::PrintRunSummary(*run);
    parts.push_back(
        analysis::FirstObservationShares(bench::InputsFor(*run).observers));
  }

  std::printf("%s\n",
              analysis::RenderFig2(analysis::MergeGeoResults(parts)).c_str());
  return 0;
}
