// Figure 2: share of first new-block observations per vantage region.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"Fig 2 - first observations per region"};

  core::ExperimentConfig cfg = core::presets::SmallStudy(150);
  cfg.duration = Duration::Hours(10);
  cfg.workload.rate_per_sec = 0;  // blocks only
  core::Experiment exp{cfg};
  exp.Run();
  bench::PrintRunSummary(exp);

  const auto inputs = bench::InputsFor(exp);
  std::printf("%s\n",
              analysis::RenderFig2(
                  analysis::FirstObservationShares(inputs.observers)).c_str());
  return 0;
}
