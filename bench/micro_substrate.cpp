// Microbenchmarks for the hot substrate paths (google-benchmark): hashing,
// RLP, the event queue, winner sampling, tree insertion, and a full
// block-gossip round. These guard the simulator's events/second budget and
// double as the ablation harness for DESIGN.md's engine choices.
//
// Besides the console table, the binary writes a curated machine-readable
// summary to BENCH_engine.json (path overridable via ETHSIM_BENCH_JSON) so
// the engine's events/second trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "chain/block_arena.hpp"
#include "chain/blocktree.hpp"
#include "chain/txpool.hpp"
#include "common/keccak.hpp"
#include "common/random.hpp"
#include "common/rlp.hpp"
#include "eth/node.hpp"
#include "miner/pool.hpp"
#include "net/network.hpp"
#include "obs/tx_provenance.hpp"
#include "p2p/kademlia.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace {

using namespace ethsim;

void BM_Keccak256(benchmark::State& state) {
  const std::string input(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Keccak256Of(input));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Keccak256)->Arg(64)->Arg(512)->Arg(4096);

void BM_RlpEncodeHeader(benchmark::State& state) {
  chain::BlockHeader h;
  h.number = 7'500'000;
  h.difficulty = 2'000'000'000'000ULL;
  h.timestamp = 1'554'076'800;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain::EncodeHeader(h));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RlpEncodeHeader);

void BM_RlpDecodeRoundTrip(benchmark::State& state) {
  rlp::Encoder e;
  e.BeginList();
  for (int i = 0; i < 16; ++i) e.WriteUint(static_cast<std::uint64_t>(i) << 20);
  e.EndList();
  const rlp::Bytes encoded = e.Take();
  for (auto _ : state) {
    rlp::Item item;
    benchmark::DoNotOptimize(rlp::Decode(encoded, item));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RlpDecodeRoundTrip);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t x = 99;
    for (std::size_t i = 0; i < n; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      simulator.Schedule(Duration::Micros(static_cast<std::int64_t>(x % 1'000'000)),
                         [] {});
    }
    simulator.RunAll();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_AliasSamplerDraw(benchmark::State& state) {
  std::vector<double> shares;
  for (const auto& pool : miner::PaperPools()) shares.push_back(pool.hashrate_share);
  AliasSampler sampler{shares};
  Rng rng{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AliasSamplerDraw);

void BM_BlockTreeLinearInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    chain::BlockArena arena;
    chain::Block g;
    g.header.difficulty = 1000;
    g.Seal();
    const chain::BlockPtr genesis = arena.Adopt(std::move(g));
    std::vector<chain::BlockPtr> blocks;
    chain::BlockPtr tip = genesis;
    for (std::uint64_t i = 0; i < n; ++i) {
      chain::Block body;
      body.header.parent_hash = tip->hash;
      body.header.number = tip->header.number + 1;
      body.header.difficulty = 1000;
      body.Seal();
      tip = arena.Adopt(std::move(body));
      blocks.push_back(tip);
    }
    state.ResumeTiming();

    chain::BlockTree tree{genesis};
    for (std::uint64_t i = 0; i < n; ++i)
      tree.Add(blocks[i], TimePoint::FromMicros(static_cast<std::int64_t>(i)));
    benchmark::DoNotOptimize(tree.head_number());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BlockTreeLinearInsert)->Arg(1'000);

void BM_TxPoolAddSelect(benchmark::State& state) {
  for (auto _ : state) {
    chain::TxPool pool;
    for (std::uint8_t s = 1; s <= 50; ++s) {
      Address sender;
      sender.bytes[0] = s;
      for (std::uint64_t n = 0; n < 4; ++n)
        pool.Add(chain::MakeTransaction(sender, n, sender, 1,
                                        1 + (s * 7 + n) % 50));
    }
    benchmark::DoNotOptimize(pool.SelectForBlock(8'000'000, 200));
  }
  // 200 adds + one full selection per iteration.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 201);
}
BENCHMARK(BM_TxPoolAddSelect);

// Steady-state selection: the pool is populated once (100 senders x 8 txs,
// one queued gap per third sender) and SelectForBlock runs repeatedly. This
// isolates the persistent price-index path from Add-side churn.
void BM_TxPoolSelectForBlock(benchmark::State& state) {
  chain::TxPool pool;
  for (std::uint8_t s = 1; s <= 100; ++s) {
    Address sender;
    sender.bytes[0] = s;
    for (std::uint64_t n = 0; n < 8; ++n) {
      if (s % 3 == 0 && n == 4) continue;  // nonce gap => queued tail
      pool.Add(chain::MakeTransaction(sender, n, sender, 1,
                                      1 + (s * 13 + n * 5) % 97));
    }
  }
  std::int64_t selected = 0;
  for (auto _ : state) {
    const auto txs = pool.SelectForBlock(8'000'000, 400);
    benchmark::DoNotOptimize(txs.data());
    selected += static_cast<std::int64_t>(txs.size());
  }
  state.SetItemsProcessed(selected);
}
BENCHMARK(BM_TxPoolSelectForBlock);

// Reorg churn: two branches race from genesis, alternately taking the
// total-difficulty lead, so every other insert flips the canonical chain
// with an ever-deeper divergence point. Exercises the arena-linked reorg
// walk (retire + adopt over canonical_ slots).
void BM_BlockTreeReorgChurn(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    chain::BlockArena arena;
    chain::Block g;
    g.header.difficulty = 1000;
    g.Seal();
    const chain::BlockPtr genesis = arena.Adopt(std::move(g));
    std::vector<chain::BlockPtr> blocks;
    chain::BlockPtr tips[2] = {genesis, genesis};
    // Interleave: extend A by one, then B by two, then A by two, ... so the
    // lead alternates and each pair of inserts triggers one reorg.
    std::size_t branch = 0;
    std::uint64_t mix = 1;
    while (blocks.size() < n) {
      for (int k = 0; k < 2 && blocks.size() < n; ++k) {
        chain::Block body;
        body.header.parent_hash = tips[branch]->hash;
        body.header.number = tips[branch]->header.number + 1;
        body.header.difficulty = 1000;
        body.header.mix_seed = mix++;
        body.Seal();
        tips[branch] = arena.Adopt(std::move(body));
        blocks.push_back(tips[branch]);
      }
      branch ^= 1;
    }
    state.ResumeTiming();

    chain::BlockTree tree{genesis};
    for (std::size_t i = 0; i < blocks.size(); ++i)
      tree.Add(blocks[i], TimePoint::FromMicros(static_cast<std::int64_t>(i)));
    benchmark::DoNotOptimize(tree.head_number());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BlockTreeReorgChurn)->Arg(400);

void BM_KademliaLookup(benchmark::State& state) {
  Rng rng{3};
  std::vector<p2p::NodeId> ids;
  for (int i = 0; i < 500; ++i) ids.push_back(p2p::RandomNodeId(rng));
  std::unordered_map<Hash32, p2p::RoutingTable> tables;
  for (const auto& id : ids) {
    p2p::RoutingTable t{id};
    for (const auto& other : ids) t.Add(other);
    tables.emplace(id, std::move(t));
  }
  p2p::RoutingTable local{p2p::RandomNodeId(rng)};
  for (int i = 0; i < 3; ++i) local.Add(ids[static_cast<std::size_t>(i)]);
  const auto query = [&](const p2p::NodeId& n, const p2p::NodeId& t) {
    return tables.at(n).Closest(t, p2p::kBucketSize);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p2p::IterativeFindNode(local, p2p::RandomNodeId(rng), 16, query));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KademliaLookup);

// Full gossip round: one mined block disseminated through a 64-node mesh.
void BM_GossipBlockBroadcast(benchmark::State& state) {
  std::int64_t total_events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    net::NetworkParams params;
    net::Network network{simulator, Rng{7}, params};
    chain::BlockArena arena;
    chain::Block g;
    g.header.difficulty = 1000;
    g.Seal();
    const chain::BlockPtr genesis = arena.Adopt(std::move(g));
    Rng ids{11};
    std::vector<std::unique_ptr<eth::EthNode>> nodes;
    for (int i = 0; i < 64; ++i) {
      const net::HostId host =
          network.AddHost({net::Region::WesternEurope, 1e9});
      nodes.push_back(std::make_unique<eth::EthNode>(
          simulator, network, host, p2p::RandomNodeId(ids), genesis,
          eth::NodeConfig{}, ids.Fork(static_cast<std::uint64_t>(i))));
    }
    Rng topo{13};
    for (std::size_t i = 0; i < nodes.size(); ++i)
      for (int d = 0; d < 8; ++d)
        eth::EthNode::Connect(*nodes[i], *nodes[topo.NextBounded(nodes.size())]);
    chain::Block body;
    body.header.parent_hash = genesis->hash;
    body.header.number = genesis->header.number + 1;
    body.header.difficulty = 1000;
    body.Seal();
    const chain::BlockPtr block = arena.Adopt(std::move(body));
    state.ResumeTiming();

    nodes[0]->InjectMinedBlock(block);
    simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(30).micros()));
    benchmark::DoNotOptimize(simulator.events_executed());
    total_events += static_cast<std::int64_t>(simulator.events_executed());
  }
  // items/sec == simulated events/sec for the full dissemination round.
  state.SetItemsProcessed(total_events);
}
BENCHMARK(BM_GossipBlockBroadcast)->Unit(benchmark::kMillisecond);

// Plan-mode workload generation end to end: a mixed plan (Poisson with
// replace-by-fee, Zipf hot accounts, flash crowd, closed-loop clients) runs
// 60 sim-seconds against an 8-node fleet with no miners. items/sec ==
// submitted transactions/sec; guards the per-submission cost of account
// selection, gas-price draws, nonce bookkeeping, and inclusion tracking.
void BM_WorkloadSubmit(benchmark::State& state) {
  std::int64_t total_submitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    net::Network network{simulator, Rng{7}, net::NetworkParams{}};
    chain::BlockArena arena;
    chain::Block g;
    g.header.difficulty = 1000;
    g.Seal();
    const chain::BlockPtr genesis = arena.Adopt(std::move(g));
    Rng ids{11};
    std::vector<std::unique_ptr<eth::EthNode>> nodes;
    std::vector<eth::EthNode*> frontends;
    for (int i = 0; i < 8; ++i) {
      const net::HostId host =
          network.AddHost({net::Region::WesternEurope, 1e9});
      nodes.push_back(std::make_unique<eth::EthNode>(
          simulator, network, host, p2p::RandomNodeId(ids), genesis,
          eth::NodeConfig{}, ids.Fork(static_cast<std::uint64_t>(i))));
      frontends.push_back(nodes.back().get());
    }
    workload::WorkloadPlan plan;
    plan.Poisson("base", 400.0, 500);
    plan.last().zipf_exponent = 1.1;
    plan.last().fee.replacement_deadline = Duration::Seconds(5);
    plan.FlashCrowd("surge", 100.0, 100,
                    TimePoint::FromMicros(Duration::Seconds(20).micros()),
                    Duration::Seconds(20), 4.0);
    plan.last().account_offset = 500;
    plan.ClosedLoop("users", 50, Duration::Seconds(5));
    plan.last().account_offset = 600;
    auto generator = std::make_unique<workload::WorkloadGenerator>(
        simulator, Rng{42}, workload::TxWorkloadParams{}, plan, frontends);
    state.ResumeTiming();

    generator->Start();
    simulator.RunUntil(TimePoint::FromMicros(Duration::Seconds(60).micros()));
    benchmark::DoNotOptimize(generator->total_submitted());
    total_submitted += static_cast<std::int64_t>(generator->total_submitted());
  }
  state.SetItemsProcessed(total_submitted);
}
BENCHMARK(BM_WorkloadSubmit)->Unit(benchmark::kMillisecond);

// Tx-lifecycle recorder hot path: full submit -> pool-admit -> select ->
// include cycles with a periodic AdvanceHead commit sweep over two depths.
// items/sec == stage records appended/sec; guards the per-record cost of the
// ETHSIM_TXPROV flight recorder (columnar append + per-tx state + invariant
// facts) that rides every transaction event when recording is on.
void BM_TxProvRecord(benchmark::State& state) {
  constexpr std::size_t kTxs = 512;
  constexpr std::size_t kTxsPerBlock = 8;
  std::vector<Hash32> tx_hashes(kTxs);
  std::vector<Hash32> block_hashes(kTxs / kTxsPerBlock);
  for (std::size_t i = 0; i < kTxs; ++i) {
    tx_hashes[i].bytes[0] = static_cast<std::uint8_t>(i >> 8);
    tx_hashes[i].bytes[1] = static_cast<std::uint8_t>(i);
  }
  for (std::size_t i = 0; i < block_hashes.size(); ++i) {
    block_hashes[i].bytes[0] = 0xb0;
    block_hashes[i].bytes[1] = static_cast<std::uint8_t>(i);
  }
  std::int64_t total_records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    obs::TxProvConfig config;
    config.confirmation_depths = {0, 2};
    auto recorder = std::make_unique<obs::TxProvRecorder>(std::move(config));
    for (std::uint32_t host = 0; host < 4; ++host)
      recorder->RegisterHost(host, static_cast<std::uint8_t>(host));
    recorder->MarkVantage(1);
    recorder->MarkAnchor(0);
    state.ResumeTiming();

    std::int64_t t = 0;
    for (std::size_t i = 0; i < kTxs; ++i) {
      const Hash32& tx = tx_hashes[i];
      const std::uint64_t height = 1 + i / kTxsPerBlock;
      const Hash32& block = block_hashes[i / kTxsPerBlock];
      recorder->RecordSubmitted(tx, t, 2, 0, 50 + (i % 7), 0);
      recorder->RecordFirstSeen(1, tx, t + 1);
      recorder->RecordPoolOutcome(2, tx, t + 2, obs::TxPoolOutcome::kPending,
                                  50 + (i % 7));
      recorder->RecordSelected(0, tx, t + 3,
                               static_cast<std::uint16_t>(i % 6), block,
                               height);
      recorder->RecordIncluded(0, tx, t + 4, block, height);
      t += 5;
      if ((i + 1) % kTxsPerBlock == 0) recorder->AdvanceHead(0, height, t++);
    }
    benchmark::DoNotOptimize(recorder->records_recorded());
    total_records += static_cast<std::int64_t>(recorder->records_recorded());
  }
  state.SetItemsProcessed(total_records);
}
BENCHMARK(BM_TxProvRecord);

// Schedule/cancel churn: half the scheduled events are cancelled before they
// fire. Guards the O(1) generation-based Cancel (the seed engine kept a
// tombstone set that grew without bound).
void BM_EventQueueCancelChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    std::vector<sim::EventHandle> handles;
    handles.reserve(n);
    std::uint64_t x = 7;
    for (std::size_t i = 0; i < n; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      handles.push_back(simulator.Schedule(
          Duration::Micros(static_cast<std::int64_t>(x % 1'000'000)), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) simulator.Cancel(handles[i]);
    simulator.RunAll();
    // Stale cancels after the run must stay no-ops (regression for the
    // tombstone leak).
    for (std::size_t i = 1; i < n; i += 2) simulator.Cancel(handles[i]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(100'000);

// Curated JSON summary. We deliberately avoid --benchmark_format=json (it
// dumps every context field and complexity report); instead we keep a small
// stable schema so BENCH_engine.json diffs stay readable across PRs.
// It piggybacks on ConsoleReporter because RunSpecifiedBenchmarks only feeds
// a separate file_reporter when --benchmark_out is passed.
class EngineJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Entry e;
      e.real_time_ns = run.GetAdjustedRealTime();  // already in run.time_unit
      switch (run.time_unit) {
        case benchmark::kMillisecond: e.real_time_ns *= 1e6; break;
        case benchmark::kMicrosecond: e.real_time_ns *= 1e3; break;
        case benchmark::kSecond: e.real_time_ns *= 1e9; break;
        default: break;  // kNanosecond
      }
      const auto items = run.counters.find("items_per_second");
      const auto bytes = run.counters.find("bytes_per_second");
      if (items != run.counters.end()) e.items_per_second = items->second;
      if (bytes != run.counters.end()) e.bytes_per_second = bytes->second;
      // Counter-less benchmarks used to land in the JSON without an
      // items_per_second field (rendered as null downstream). Derive the
      // natural one-item-per-iteration rate so the field is always present.
      if (e.items_per_second <= 0.0 && e.real_time_ns > 0.0)
        e.items_per_second = 1e9 / e.real_time_ns;
      entries_[run.benchmark_name()] = e;
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    const char* env = std::getenv("ETHSIM_BENCH_JSON");
    const std::string path = (env != nullptr && env[0] != '\0')
                                 ? std::string{env}
                                 : std::string{"BENCH_engine.json"};
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "micro_substrate: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"benchmarks\": {\n");
    std::size_t i = 0;
    for (const auto& [name, e] : entries_) {
      std::fprintf(f, "    \"%s\": {\"real_time_ns\": %.1f", name.c_str(),
                   e.real_time_ns);
      std::fprintf(f, ", \"items_per_second\": %.0f", e.items_per_second);
      if (e.bytes_per_second > 0.0)
        std::fprintf(f, ", \"bytes_per_second\": %.0f", e.bytes_per_second);
      std::fprintf(f, "}%s\n", ++i < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "micro_substrate: wrote %s\n", path.c_str());
  }

 private:
  struct Entry {
    double real_time_ns = 0.0;
    double items_per_second = 0.0;
    double bytes_per_second = 0.0;
  };
  std::map<std::string, Entry> entries_;  // sorted => stable JSON diffs
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  EngineJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
