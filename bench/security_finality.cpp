// §III-D: block-finality security. Month-scale observed runs vs the p^k
// model, plus the whole-history (7.6M-block) surrogate scan that recovers
// the paper's 10/11/12/14-length run counts.
//
// The four winner-sampling jobs (observed month + three concentration eras)
// are independent — each owns its Rng seed — so they fan out through
// SeedSweepRunner::ForEachIndex and land in fixed slots; the concatenation
// order (and therefore every run-length count) is identical to the serial
// version no matter how many threads ran.
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "core/sweep.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"SIII-D - finality vs pool concentration"};

  const auto pools = miner::PaperPools();

  // Mining was far more concentrated in Ethereum's early years
  // (Ethpool/Ethermine and F2pool held 30-40% for long stretches), which is
  // where the paper's 10-14 block runs come from. Model history as three
  // concentration eras; within each, the top pool's share is scaled and the
  // rest renormalized.
  auto era = [&](double top_share, std::size_t blocks, std::uint64_t seed) {
    std::vector<miner::PoolSpec> adjusted = pools;
    const double rest = 1.0 - top_share;
    const double old_rest = 1.0 - adjusted[0].hashrate_share;
    adjusted[0].hashrate_share = top_share;
    for (std::size_t i = 1; i < adjusted.size(); ++i)
      adjusted[i].hashrate_share *= rest / old_rest;
    return analysis::SampleWinners(adjusted, blocks, Rng{seed});
  };

  // slot 0: one observed month (the paper's window: 201,086 main blocks);
  // slots 1-3: the 7.6M-block whole-chain surrogate, era by era.
  std::vector<std::vector<std::size_t>> parts(4);
  core::SeedSweepRunner runner{{bench::EnvSizeT("ETHSIM_SWEEP_THREADS", 0)}};
  runner.ForEachIndex(parts.size(), [&](std::size_t i) {
    switch (i) {
      case 0: parts[0] = analysis::SampleWinners(pools, 201'086, Rng{4}); break;
      case 1: parts[1] = era(0.42, 1'500'000, 5); break;                // 2015-16
      case 2: parts[2] = era(0.30, 1'500'000, 6); break;               // 2017
      case 3: parts[3] = analysis::SampleWinners(pools, 4'600'000, Rng{7});
              break;                                                    // 2018-19
    }
  });

  const auto month = analysis::SequencesFromWinners(parts[0], pools);
  std::vector<std::size_t> history_winners = std::move(parts[1]);
  history_winners.insert(history_winners.end(), parts[2].begin(),
                         parts[2].end());
  history_winners.insert(history_winners.end(), parts[3].begin(),
                         parts[3].end());
  const auto history = analysis::SequencesFromWinners(history_winners, pools);

  std::printf("%s\n",
              analysis::RenderSecurity(month, history, 13.3).c_str());

  // Confirmation-depth requirement sweep: what the 12-block rule would need
  // to be for different adversary sizes.
  std::printf("required confirmations for <0.01 expected breaks/month:\n");
  for (const double share : {0.10, 0.15, 0.2269, 0.259, 0.33, 0.45}) {
    std::printf("  pool share %5.1f%% -> %2zu confirmations\n", share * 100,
                analysis::RequiredConfirmations(share, 0.01));
  }
  return 0;
}
