// §III-D: block-finality security. Month-scale observed runs vs the p^k
// model, plus the whole-history (7.6M-block) surrogate scan that recovers
// the paper's 10/11/12/14-length run counts.
#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace ethsim;

int main() {
  bench::Banner banner{"SIII-D - finality vs pool concentration"};

  const auto pools = miner::PaperPools();

  // One observed month (the paper's window: 201,086 main blocks).
  const auto month_winners = analysis::SampleWinners(pools, 201'086, Rng{4});
  const auto month = analysis::SequencesFromWinners(month_winners, pools);

  // The whole-chain scan surrogate (7.6M blocks). Mining was far more
  // concentrated in Ethereum's early years (Ethpool/Ethermine and F2pool
  // held 30-40% for long stretches), which is where the paper's 10-14 block
  // runs come from. Model history as three concentration eras; within each,
  // the top pool's share is scaled and the rest renormalized.
  auto era = [&](double top_share, std::size_t blocks, std::uint64_t seed) {
    std::vector<miner::PoolSpec> adjusted = pools;
    const double rest = 1.0 - top_share;
    const double old_rest = 1.0 - adjusted[0].hashrate_share;
    adjusted[0].hashrate_share = top_share;
    for (std::size_t i = 1; i < adjusted.size(); ++i)
      adjusted[i].hashrate_share *= rest / old_rest;
    return analysis::SampleWinners(adjusted, blocks, Rng{seed});
  };
  std::vector<std::size_t> history_winners = era(0.42, 1'500'000, 5);  // 2015-16
  const auto mid = era(0.30, 1'500'000, 6);                            // 2017
  const auto late = analysis::SampleWinners(pools, 4'600'000, Rng{7}); // 2018-19
  history_winners.insert(history_winners.end(), mid.begin(), mid.end());
  history_winners.insert(history_winners.end(), late.begin(), late.end());
  const auto history = analysis::SequencesFromWinners(history_winners, pools);

  std::printf("%s\n",
              analysis::RenderSecurity(month, history, 13.3).c_str());

  // Confirmation-depth requirement sweep: what the 12-block rule would need
  // to be for different adversary sizes.
  std::printf("required confirmations for <0.01 expected breaks/month:\n");
  for (const double share : {0.10, 0.15, 0.2269, 0.259, 0.33, 0.45}) {
    std::printf("  pool share %5.1f%% -> %2zu confirmations\n", share * 100,
                analysis::RequiredConfirmations(share, 0.01));
  }
  return 0;
}
